"""Tests for :mod:`repro.serve.admission` and priority-aware worker dispatch.

The contract under test:

* :class:`AdmissionController` decisions follow the documented rule order
  (overload state, depth caps, inflight-cost caps, unmeetable deadline) and
  carry their evidence (queue depths, predicted latency, predicted slack);
* the overload state machine escalates with predicted backlog and
  de-escalates with hysteresis;
* a shed request never touches an engine, and its typed decision raises
  :class:`RequestShedError` when a result is demanded;
* admission outcomes and the DAC/ADC/crossbar/digital energy split flow into
  the telemetry exports;
* workers dispatch the globally most urgent formed batch (priority, then
  EDF, then formation order, with aged batches promoted) instead of
  FIFO-draining one model.
"""

import threading
import time

import numpy as np
import pytest

from repro.hw import RAELLA_ARCH
from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
    OverloadState,
    RequestShedError,
    ServerStoppedError,
)
from repro.serve.scheduler import InferenceFuture, InferenceRequest
from repro.serve.server import _DispatchedBatch


def per_sample_predictor(seconds_per_sample):
    """A deterministic latency predictor: n_samples * seconds_per_sample."""

    def predictor(model_name, n_samples):
        return n_samples * seconds_per_sample

    return predictor


def decide(
    controller,
    model_name="m",
    tenant=None,
    n_samples=1,
    priority=0,
    deadline_s=None,
    backlog=None,
    tenants=None,
    predictor=None,
):
    return controller.decide(
        request_id=0,
        model_name=model_name,
        tenant=tenant if tenant is not None else model_name,
        n_samples=n_samples,
        priority=priority,
        deadline_s=deadline_s,
        backlog_samples=backlog or {},
        tenants=tenants or {},
        predictor=predictor,
    )


class TestAdmissionPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_queue_samples_per_model"):
            AdmissionPolicy(max_queue_samples_per_model=0)
        with pytest.raises(ValueError, match="deadline_policy"):
            AdmissionPolicy(deadline_policy="drop")
        with pytest.raises(ValueError, match="slack_margin_s"):
            AdmissionPolicy(slack_margin_s=-0.1)
        with pytest.raises(ValueError, match="overload_exit_fraction"):
            AdmissionPolicy(overload_exit_fraction=0.0)
        with pytest.raises(ValueError, match="critical_enter_backlog_s"):
            AdmissionPolicy(overload_enter_backlog_s=2.0, critical_enter_backlog_s=1.0)


class TestControllerRules:
    def test_unloaded_request_accepted_with_evidence(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=8))
        decision = decide(
            controller,
            n_samples=2,
            deadline_s=1.0,
            predictor=per_sample_predictor(0.01),
        )
        assert decision.status == "accepted"
        assert decision.accepted
        assert decision.queue_depth_samples == 0
        assert decision.predicted_latency_s == pytest.approx(0.02)
        assert decision.predicted_slack_s == pytest.approx(0.98)
        assert decision.overload_state is OverloadState.ACCEPTING

    def test_model_depth_cap_sheds(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=8))
        decision = decide(controller, n_samples=4, backlog={"m": 6})
        assert decision.status == "shed"
        assert not decision.accepted
        assert decision.queue_depth_samples == 6
        assert "queue depth cap" in decision.reason

    def test_tenant_depth_cap_sums_models(self):
        controller = AdmissionController(
            AdmissionPolicy(max_queue_samples_per_tenant=10)
        )
        tenants = {"a": "acme", "b": "acme", "c": "other"}
        decision = decide(
            controller,
            model_name="a",
            tenant="acme",
            n_samples=4,
            backlog={"a": 3, "b": 5, "c": 50},
            tenants=tenants,
        )
        assert decision.status == "shed"
        assert decision.tenant_depth_samples == 8  # c's backlog not counted
        assert "tenant queue depth cap" in decision.reason
        # The same submit against a lighter tenant is admitted.
        decision = decide(
            controller,
            model_name="c",
            tenant="other",
            n_samples=4,
            backlog={"a": 3, "b": 5, "c": 5},
            tenants=tenants,
        )
        assert decision.status == "accepted"

    def test_inflight_cost_caps(self):
        policy = AdmissionPolicy(max_inflight_cost_s=0.5)
        controller = AdmissionController(policy)
        decision = decide(
            controller,
            n_samples=10,
            backlog={"m": 50},
            predictor=per_sample_predictor(0.01),
        )
        assert decision.status == "shed"
        assert "model inflight cost cap" in decision.reason
        # Without a predictor the cost cap is inert (nothing provable).
        assert decide(controller, n_samples=10, backlog={"m": 50}).accepted

    def test_tenant_inflight_cost_cap(self):
        controller = AdmissionController(
            AdmissionPolicy(max_tenant_inflight_cost_s=0.5)
        )
        tenants = {"a": "acme", "b": "acme"}
        decision = decide(
            controller,
            model_name="a",
            tenant="acme",
            n_samples=10,
            backlog={"a": 10, "b": 40},
            tenants=tenants,
            predictor=per_sample_predictor(0.01),
        )
        assert decision.status == "shed"
        assert "tenant inflight cost cap" in decision.reason

    def test_unmeetable_deadline_sheds_with_slack_evidence(self):
        controller = AdmissionController()
        decision = decide(
            controller,
            n_samples=2,
            deadline_s=0.05,
            backlog={"m": 8},
            predictor=per_sample_predictor(0.01),
        )
        assert decision.status == "shed"
        assert decision.predicted_latency_s == pytest.approx(0.10)
        assert decision.predicted_slack_s == pytest.approx(-0.05)
        assert "deadline unmeetable" in decision.reason

    def test_slack_margin_tightens_the_test(self):
        loose = AdmissionController(AdmissionPolicy())
        tight = AdmissionController(AdmissionPolicy(slack_margin_s=0.5))
        kwargs = dict(n_samples=1, deadline_s=0.3, predictor=per_sample_predictor(0.01))
        assert decide(loose, **kwargs).accepted
        assert decide(tight, **kwargs).status == "shed"

    def test_downgrade_policy_strips_slo(self):
        controller = AdmissionController(AdmissionPolicy(deadline_policy="downgrade"))
        decision = decide(
            controller,
            n_samples=2,
            deadline_s=0.01,
            backlog={"m": 50},
            predictor=per_sample_predictor(0.01),
        )
        assert decision.status == "downgraded"
        assert decision.accepted

    def test_no_deadline_no_predictor_accepts(self):
        controller = AdmissionController()
        assert decide(controller, n_samples=4, backlog={"m": 10**6}).accepted

    def test_failing_predictor_degrades_to_accept(self):
        def broken(name, n):
            raise RuntimeError("estimator died")

        controller = AdmissionController()
        decision = decide(
            controller,
            n_samples=1,
            deadline_s=0.001,
            backlog={"m": 10**6},
            predictor=broken,
        )
        assert decision.accepted
        assert decision.predicted_latency_s is None

    def test_counters_accumulate(self):
        controller = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=2))
        decide(controller, n_samples=1)
        decide(controller, n_samples=1)
        decide(controller, n_samples=4)  # over the cap
        counters = controller.counters()
        assert counters.accepted == 2
        assert counters.shed == 1
        assert counters.decisions == 3


class TestOverloadStateMachine:
    def controller(self):
        return AdmissionController(
            AdmissionPolicy(
                overload_enter_backlog_s=1.0,
                critical_enter_backlog_s=2.0,
                overload_exit_fraction=0.5,
                critical_priority=2,
            )
        )

    def test_escalates_and_sheds_by_class(self):
        controller = self.controller()
        predictor = per_sample_predictor(0.01)
        # Backlog 1.5s: shed best-effort, keep SLO-tagged work.
        best_effort = decide(
            controller, n_samples=1, backlog={"m": 150}, predictor=predictor
        )
        assert controller.state is OverloadState.SHED_BEST_EFFORT
        assert best_effort.status == "shed"
        assert "best-effort" in best_effort.reason
        tagged = decide(
            controller,
            n_samples=1,
            priority=1,
            backlog={"m": 150},
            predictor=predictor,
        )
        assert tagged.accepted
        # Backlog 3s: critical, only priority >= 2 admitted.
        low = decide(
            controller,
            n_samples=1,
            priority=1,
            backlog={"m": 300},
            predictor=predictor,
        )
        assert controller.state is OverloadState.SHED_ALL_BUT_TOP
        assert low.status == "shed"
        assert "critical" in low.reason
        top = decide(
            controller,
            n_samples=1,
            priority=2,
            backlog={"m": 300},
            predictor=predictor,
        )
        assert top.accepted

    def test_hysteresis_on_the_way_down(self):
        controller = self.controller()
        predictor = per_sample_predictor(0.01)
        decide(controller, n_samples=1, backlog={"m": 300}, predictor=predictor)
        assert controller.state is OverloadState.SHED_ALL_BUT_TOP
        # 1.5s is below the 2s critical threshold but above its 1s exit
        # level (0.5 * 2s): the state must hold.
        decide(controller, n_samples=1, backlog={"m": 150}, predictor=predictor)
        assert controller.state is OverloadState.SHED_ALL_BUT_TOP
        # 0.9s: below the critical exit level, still above the overload
        # exit level (0.5 * 1s) -> de-escalate one step only.
        decide(controller, n_samples=1, backlog={"m": 90}, predictor=predictor)
        assert controller.state is OverloadState.SHED_BEST_EFFORT
        # 0.4s: fully recovered.
        decide(controller, n_samples=1, backlog={"m": 40}, predictor=predictor)
        assert controller.state is OverloadState.ACCEPTING
        assert controller.counters().state_transitions == 3

    def test_downgrade_is_shed_while_overloaded(self):
        controller = AdmissionController(
            AdmissionPolicy(deadline_policy="downgrade", overload_enter_backlog_s=1.0)
        )
        predictor = per_sample_predictor(0.01)
        decision = decide(
            controller,
            n_samples=1,
            priority=1,
            deadline_s=0.01,
            backlog={"m": 150},
            predictor=predictor,
        )
        # Slack is negative and the controller is shedding best-effort:
        # downgrading would admit work it is simultaneously rejecting.
        assert decision.status == "shed"


class TestRetract:
    """``retract`` undoes exactly one decision's counter -- the contract the
    server's stop/submit race handling leans on."""

    def test_retract_rolls_back_each_status(self):
        policy = AdmissionPolicy(
            max_queue_samples_per_model=4, deadline_policy="downgrade"
        )
        controller = AdmissionController(policy)
        accepted = decide(controller, n_samples=1)
        downgraded = decide(
            controller,
            n_samples=1,
            deadline_s=0.0001,
            predictor=per_sample_predictor(1.0),
        )
        shed = decide(controller, n_samples=1, backlog={"m": 4})
        statuses = [d.status for d in (accepted, downgraded, shed)]
        assert statuses == ["accepted", "downgraded", "shed"]
        before = controller.counters()
        assert (before.accepted, before.downgraded, before.shed) == (1, 1, 1)
        for decision in (accepted, downgraded, shed):
            controller.retract(decision)
        after = controller.counters()
        assert (after.accepted, after.downgraded, after.shed) == (0, 0, 0)
        # State transitions are deliberately untouched by retract.
        assert after.state_transitions == before.state_transitions

    def test_concurrent_decide_retract_storm_conserves_counters(self):
        """Counters stay exact when many threads decide and retract at once
        (the controller-level shape of the stop/submit race)."""
        controller = AdmissionController(AdmissionPolicy())
        retracted = threading.Barrier(4)
        kept_per_thread = 25

        def worker():
            retracted.wait()
            for i in range(100):
                decision = decide(controller, n_samples=1)
                if i % 4:  # 75 of 100 "failed to enqueue" and roll back
                    controller.retract(decision)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        counters = controller.counters()
        assert counters.accepted == 4 * kept_per_thread
        assert counters.shed == 0

    def test_stop_submit_race_never_leaks_a_count(self, tiny_mlp_model, rng):
        """Hammer submit from several threads while the server stops and
        restarts: every ServerStoppedError must leave no admission count,
        so accepted decisions equal requests actually enqueued."""
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        admission = AdmissionController(AdmissionPolicy())
        server = InferenceServer(registry, admission=admission)
        inputs = np.abs(rng.normal(0, 1, size=(1, 16)))
        done = threading.Event()
        attempts, rejected = 0, 0
        tally = threading.Lock()

        def submitter():
            nonlocal attempts, rejected
            while not done.is_set():
                try:
                    server.submit("mlp", inputs)
                    with tally:
                        attempts += 1
                except ServerStoppedError:
                    with tally:
                        attempts += 1
                        rejected += 1

        server.start()
        threads = [threading.Thread(target=submitter) for _ in range(4)]
        for thread in threads:
            thread.start()
        for _ in range(8):  # keep closing the queue under the submitters
            time.sleep(0.002)
            server.stop()
            server.start()
        done.set()
        for thread in threads:
            thread.join()
        server.stop()
        stats = server.statistics()
        counters = admission.counters()
        assert rejected > 0, "the race never fired; tighten the schedule"
        assert counters.accepted == stats.requests_submitted
        assert counters.accepted + rejected == attempts


@pytest.fixture
def serving_registry(tiny_mlp_model):
    registry = ModelRegistry()
    registry.register("mlp", tiny_mlp_model, arch=RAELLA_ARCH)
    return registry


class TestServerIntegration:
    def test_submit_returns_accepted_decision_and_result(self, serving_registry, rng):
        server = InferenceServer(serving_registry)
        inputs = np.abs(rng.normal(0, 1, size=(3, 16)))
        decision = server.submit("mlp", inputs)
        assert decision.status == "accepted"
        assert decision.reason == "admission control disabled"
        with server:
            result = decision.result(timeout=30)
        direct = serving_registry.engine("mlp").run(inputs)
        assert np.array_equal(result, direct)

    def test_depth_cap_sheds_without_touching_an_engine(
        self, serving_registry, rng, tiny_mlp_model
    ):
        from repro.telemetry import TelemetryCollector

        telemetry = TelemetryCollector()
        controller = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=4))
        server = InferenceServer(
            serving_registry, telemetry=telemetry, admission=controller
        )
        admitted = server.submit("mlp", np.abs(rng.normal(0, 1, size=(4, 16))))
        shed = server.submit("mlp", np.abs(rng.normal(0, 1, size=(4, 16))))
        assert admitted.status == "accepted"
        assert shed.status == "shed"
        assert shed.future is None
        assert shed.done()
        with pytest.raises(RequestShedError) as excinfo:
            shed.result()
        assert excinfo.value.decision is shed
        # Nothing executed: the shed decision was pure queue arithmetic.
        assert server.statistics().batches_executed == 0
        assert server.statistics().requests_shed == 1
        # Admission outcomes reached the collector.
        aggregate = telemetry.aggregate("mlp")
        assert aggregate.admitted_requests == 1
        assert aggregate.shed_requests == 1
        assert telemetry.overload_state == "accepting"
        assert "repro_admission_shed_total" in telemetry.to_prometheus()
        assert '"overload_state": "accepting"' in telemetry.export_json(
            include_traces=False
        )
        with server:
            admitted.result(timeout=30)

    def test_downgraded_request_completes_as_best_effort(self, serving_registry, rng):
        controller = AdmissionController(
            AdmissionPolicy(deadline_policy="downgrade"),
            latency_predictor=per_sample_predictor(10.0),
        )
        server = InferenceServer(serving_registry, admission=controller)
        decision = server.submit(
            "mlp", np.abs(rng.normal(0, 1, size=(2, 16))), deadline_s=0.01
        )
        assert decision.status == "downgraded"
        with server:
            result = decision.result(timeout=30)
        assert result.shape == (2, 4)
        stats = server.statistics()
        assert stats.requests_downgraded == 1
        assert stats.requests_submitted == 1

    def test_infer_raises_on_shed(self, serving_registry, rng):
        controller = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=1))
        server = InferenceServer(serving_registry, admission=controller)
        with pytest.raises(RequestShedError, match="queue depth cap"):
            server.submit("mlp", np.abs(rng.normal(0, 1, size=(1, 16))))
            server.infer("mlp", np.abs(rng.normal(0, 1, size=(1, 16))))

    def test_registry_tenants(self, tiny_mlp_model, tiny_conv_model):
        registry = ModelRegistry()
        registry.register("a", tiny_mlp_model, tenant="acme")
        registry.register("b", tiny_conv_model)
        assert registry.tenant("a") == "acme"
        assert registry.tenant("b") == "b"
        assert registry.tenants() == {"a": "acme", "b": "b"}
        registry.unregister("a")
        with pytest.raises(KeyError):
            registry.tenant("a")

    def test_energy_split_sums_to_total(self, serving_registry, rng):
        from repro.telemetry import TelemetryCollector

        telemetry = TelemetryCollector()
        server = InferenceServer(serving_registry, telemetry=telemetry)
        with server:
            server.infer("mlp", np.abs(rng.normal(0, 1, size=(3, 16))))
        trace = telemetry.traces("mlp")[0]
        split = trace.modeled_energy_components_pj
        assert set(split) == {"adc", "dac", "crossbar", "digital"}
        assert sum(split.values()) == pytest.approx(trace.modeled_energy_pj, rel=1e-9)
        # The split also matches the cost model's full component breakdown.
        cost = serving_registry.cost_model("mlp")
        breakdown = cost.energy_breakdown().components_pj
        for key in ("adc", "dac", "crossbar"):
            assert split[key] == pytest.approx(breakdown[key] * 3, rel=1e-9)
        aggregate = telemetry.aggregate("mlp")
        assert aggregate.modeled_energy_components_pj["adc"] == pytest.approx(
            split["adc"]
        )
        assert "component=\"digital\"" in telemetry.to_prometheus()


def make_entry(seq, priority=0, deadline_s=None, age_s=0.0, samples=1):
    now = time.monotonic()
    request = InferenceRequest(
        model_name=f"m{seq}",
        inputs=np.zeros((samples, 2)),
        future=InferenceFuture(),
        enqueued_at=now - age_s,
        priority=priority,
        deadline_s=None if deadline_s is None else now + deadline_s,
    )
    return _DispatchedBatch.from_requests(seq, [request])


class TestDispatchUrgency:
    """White-box tests of the worker-side globally-most-urgent selection."""

    def select(self, server, entries, active=()):
        from collections import deque

        server._dispatch = {
            entry.requests[0].model_name: deque([entry]) for entry in entries
        }
        server._active_batches = {name: 1 for name in active}
        return server._select_model_locked(time.monotonic())

    @pytest.fixture
    def server(self, serving_registry):
        return InferenceServer(serving_registry, BatchingPolicy(starvation_limit_s=0.5))

    def test_priority_beats_formation_order(self, server):
        chosen = self.select(
            server, [make_entry(0, priority=0), make_entry(1, priority=3)]
        )
        assert chosen == "m1"

    def test_edf_within_a_priority_class(self, server):
        chosen = self.select(
            server,
            [
                make_entry(0),  # no deadline: ranks last
                make_entry(1, deadline_s=5.0),
                make_entry(2, deadline_s=0.5),
            ],
        )
        assert chosen == "m2"

    def test_formation_order_breaks_ties(self, server):
        chosen = self.select(server, [make_entry(0), make_entry(1)])
        assert chosen == "m0"

    def test_active_model_is_skipped(self, server):
        chosen = self.select(
            server,
            [make_entry(0, priority=3), make_entry(1)],
            active=("m0",),
        )
        assert chosen == "m1"

    def test_fifo_mode_dispatches_in_formation_order(self, serving_registry):
        # slo_scheduling=False is the benchmarks' FIFO baseline: dispatch
        # must ignore priorities/deadlines end to end.
        server = InferenceServer(serving_registry, slo_scheduling=False)
        chosen = self.select(server, [make_entry(0), make_entry(1, priority=3)])
        assert chosen == "m0"

    def test_starved_batch_promoted_over_priority(self, server):
        chosen = self.select(
            server, [make_entry(0, age_s=1.0), make_entry(1, priority=3)]
        )
        assert chosen == "m0"  # older than the 0.5s limit -> top class + EDF

    def test_workers_jump_to_urgent_model(self, tiny_mlp_model, rng):
        """End to end: a high-priority batch overtakes a busy model's queue.

        One worker serialises execution and model "slow" gets an artificial
        engine delay, so its formed batches pile up; a later high-priority
        "fast" batch must dispatch before the backlog drains (the pre-PR
        dispatcher FIFO-drained all of "slow" first).
        """
        from repro.telemetry import TelemetryCollector

        registry = ModelRegistry()
        registry.register("slow", tiny_mlp_model)
        fast_model = tiny_mlp_model  # same weights, separate hosted name
        registry.register("fast", fast_model)
        engine = registry.engine("slow")
        original_run = engine.run

        def delayed_run(inputs):
            time.sleep(0.03)
            return original_run(inputs)

        engine.run = delayed_run
        try:
            telemetry = TelemetryCollector()
            server = InferenceServer(
                registry,
                BatchingPolicy(max_batch_size=1, max_delay_s=0.0),
                max_workers=1,
                telemetry=telemetry,
            )
            slow_inputs = [np.abs(rng.normal(0, 1, size=(1, 16))) for _ in range(6)]
            slow = [server.submit("slow", x) for x in slow_inputs]
            with server:
                time.sleep(0.02)  # let the first slow batch start executing
                fast = server.submit(
                    "fast", np.abs(rng.normal(0, 1, size=(1, 16))), priority=5
                )
                fast.result(timeout=30)
                for decision in slow:
                    decision.result(timeout=30)
            fast_trace = telemetry.traces("fast")[0]
            slow_dispatches = sorted(t.dispatched_at for t in telemetry.traces("slow"))
            # The high-priority batch must not run last: at least one slow
            # batch was still waiting when it dispatched.
            assert fast_trace.dispatched_at < slow_dispatches[-1]
        finally:
            engine.run = original_run
