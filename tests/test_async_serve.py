"""Tests for the asyncio front door (:mod:`repro.serve.aio` / gateway).

Two halves:

* the happy path -- ``async with`` lifecycle, awaitable admission decisions,
  ``max_inflight`` backpressure, and bit-identity against the sync
  :class:`~repro.serve.InferenceServer` on the same request stream;
* the fault-injection matrix the async surface makes dangerous -- a replica
  SIGKILLed mid-``await``, the registry closed with awaiters pending, and
  the event loop shut down with batches still in flight.  The invariant
  under every fault is the same: **every future resolves** (a result or an
  exception, never a hang).
"""

from __future__ import annotations

import asyncio
import http.client
import json
import os
import signal
import time

import numpy as np
import pytest

from repro.serve import (
    AdmissionController,
    AdmissionPolicy,
    AsyncGateway,
    AsyncInferenceServer,
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
    RequestShedError,
)
from repro.telemetry import PROMETHEUS_CONTENT_TYPE, TelemetryCollector, Tracer

POLICY = BatchingPolicy(max_batch_size=16, max_delay_s=0.001)


@pytest.fixture
def registry(tiny_mlp_model):
    registry = ModelRegistry()
    registry.register("mlp", tiny_mlp_model)
    return registry


def make_inputs(n_requests: int, seed: int = 5) -> list[np.ndarray]:
    rng = np.random.default_rng(seed)
    return [np.abs(rng.normal(0, 1, size=(1 + i % 3, 16))) for i in range(n_requests)]


class TestAsyncLifecycle:
    def test_constructor_validation(self, registry):
        with pytest.raises(ValueError, match="registry"):
            AsyncInferenceServer()
        with pytest.raises(ValueError, match="not both"):
            AsyncInferenceServer(registry, server=InferenceServer(registry))
        with pytest.raises(ValueError, match="max_inflight"):
            AsyncInferenceServer(registry, max_inflight=0)

    def test_outputs_bit_identical_to_sync_server(self, registry):
        """The same request stream through both facades, byte for byte."""
        requests = make_inputs(24)

        def run_sync():
            server = InferenceServer(registry, POLICY)
            decisions = [server.submit("mlp", r) for r in requests]
            with server:
                return [d.result(timeout=30) for d in decisions]

        async def run_async():
            async with AsyncInferenceServer(registry, POLICY) as server:
                decisions = await asyncio.gather(
                    *[server.submit("mlp", r) for r in requests]
                )
                return await asyncio.gather(*[d.result(30) for d in decisions])

        sync_outputs = run_sync()
        async_outputs = asyncio.run(run_async())
        assert all(np.array_equal(a, s) for a, s in zip(async_outputs, sync_outputs))

    def test_awaiting_the_decision_directly(self, registry):
        async def scenario():
            async with AsyncInferenceServer(registry, POLICY) as server:
                decision = await server.submit("mlp", make_inputs(1)[0])
                assert decision.accepted
                assert decision.status == "accepted"
                assert decision.model_name == "mlp"
                assert "status" in decision.as_dict()
                outputs = await decision  # __await__ sugar for .result()
                assert decision.done()
                return outputs

        outputs = asyncio.run(scenario())
        assert outputs.shape == (1, 4)

    def test_infer_convenience_and_statistics(self, registry):
        async def scenario():
            async with AsyncInferenceServer(registry, POLICY) as server:
                outputs = await server.infer("mlp", make_inputs(1)[0], timeout=30)
                assert server.statistics().requests_completed >= 1
                assert server.backlog_by_model() == {}
                assert server.inflight == 0
                assert server.registry is registry
                return outputs

        assert asyncio.run(scenario()).shape == (1, 4)

    def test_validation_errors_propagate(self, registry):
        async def scenario():
            async with AsyncInferenceServer(registry, POLICY) as server:
                with pytest.raises(KeyError):
                    await server.submit("nope", make_inputs(1)[0])
                with pytest.raises(ValueError):
                    await server.submit("mlp", np.zeros((1, 7)))

        asyncio.run(scenario())


class TestBackpressure:
    def test_max_inflight_suspends_producers(self, registry):
        """Submit N+1 requests against capacity N: the extra one must wait."""

        async def scenario():
            server = AsyncInferenceServer(registry, POLICY, max_inflight=4)
            # Not started yet: admitted requests park in the queue, so the
            # first four slots stay occupied deterministically.
            inputs = make_inputs(5)
            decisions = [await server.submit("mlp", r) for r in inputs[:4]]
            assert server.inflight == 4
            fifth = asyncio.ensure_future(server.submit("mlp", inputs[4]))
            await asyncio.sleep(0.05)
            assert not fifth.done(), "5th submit should suspend on backpressure"
            async with server:  # start: completions free slots, 5th proceeds
                decisions.append(await asyncio.wait_for(fifth, timeout=30))
                results = await asyncio.gather(*[d.result(30) for d in decisions])
            assert server.inflight == 0
            return results

        results = asyncio.run(scenario())
        assert len(results) == 5

    def test_shed_decision_frees_its_slot(self, registry):
        """A shed request must not consume in-flight capacity."""
        admission = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=4))

        async def scenario():
            server = AsyncInferenceServer(
                registry, POLICY, admission=admission, max_inflight=2
            )
            accepted = await server.submit("mlp", np.zeros((4, 16)))
            assert accepted.accepted
            for _ in range(5):  # repeated sheds would exhaust max_inflight=2
                submit = server.submit("mlp", np.zeros((4, 16)))
                shed = await asyncio.wait_for(submit, timeout=10)
                assert shed.status == "shed"
                with pytest.raises(RequestShedError) as excinfo:
                    await shed
                assert excinfo.value.decision is shed.decision
            async with server:
                await accepted.result(30)

        asyncio.run(scenario())


class TestFaultInjection:
    """Every fault resolves every future -- no hangs, no lost requests."""

    @pytest.mark.slow
    def test_replica_sigkill_mid_await(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model, backend="process", replicas=2)
        pool = registry.engine("mlp")
        events = []
        pool.add_completion_callback(events.append)
        inputs = make_inputs(8)

        async def scenario():
            async with AsyncInferenceServer(registry, POLICY) as server:
                decisions = await asyncio.gather(
                    *[server.submit("mlp", r) for r in inputs]
                )
                os.kill(pool.replica_pids()[0], signal.SIGKILL)
                return await asyncio.gather(*[d.result(60) for d in decisions])

        try:
            results = asyncio.run(scenario())
            # No request lost: one output row per submitted sample, all
            # bit-identical to a direct (in-process) engine call.
            reference = ModelRegistry()
            reference.register("mlp", tiny_mlp_model)
            direct = [reference.engine("mlp").run(r) for r in inputs]
            assert all(np.array_equal(a, b) for a, b in zip(results, direct))
            # The completion hook saw every sample exactly once, whatever
            # mix of clean runs and crash-requeues delivered them.
            assert sum(e["n_samples"] for e in events) == sum(
                r.shape[0] for r in inputs
            )
            assert all(e["replica"] is not None for e in events)
            # The pool heals before we tear it down.
            deadline = time.monotonic() + 30
            while pool.healthy_replicas < 2:
                time.sleep(0.05)
                assert time.monotonic() < deadline, "pool failed to self-heal"
        finally:
            registry.close()

    def test_registry_close_with_awaiters_pending(self, registry, tiny_mlp_model):
        """close() under pending awaiters: every future resolves, some as errors."""

        async def scenario():
            server = AsyncInferenceServer(registry, POLICY)
            # Admit while stopped so the requests are pending, then rip the
            # model out from under them before the scheduler ever starts.
            decisions = [await server.submit("mlp", r) for r in make_inputs(6)]
            registry.close()
            async with server:
                settled = await asyncio.gather(
                    *[asyncio.wait_for(d.result(), timeout=30) for d in decisions],
                    return_exceptions=True,
                )
            assert server.inflight == 0
            return settled

        settled = asyncio.run(scenario())
        assert len(settled) == 6
        for outcome in settled:
            # Resolution is what matters: either a served result (a batch
            # dispatched before the close raced in) or the engine-lookup
            # error -- but never a TimeoutError, which would mean a hang.
            assert not isinstance(outcome, asyncio.TimeoutError)
            assert isinstance(outcome, (np.ndarray, KeyError, RuntimeError))

    def test_event_loop_shutdown_with_inflight_batches(self, registry):
        """Closing the loop mid-flight must not hang or wedge the server."""
        server = AsyncInferenceServer(registry, POLICY)
        decisions = []

        async def scenario():
            for inputs in make_inputs(6):
                decisions.append(await server.submit("mlp", inputs))
            # Return with every request still queued: asyncio.run closes
            # the loop, orphaning the bridge targets.

        asyncio.run(scenario())
        # The sync machinery is untouched by the dead loop: starting it
        # drains the queue and resolves every underlying future.
        server.server.start()
        server.server.stop()
        sync_results = [d.decision.future.result(timeout=30) for d in decisions]
        assert len(sync_results) == 6
        assert server.inflight == 0  # bridge accounting survived the dead loop

    def test_cancelled_awaiter_does_not_lose_the_request(self, registry):
        async def scenario():
            async with AsyncInferenceServer(registry, POLICY) as server:
                decision = await server.submit("mlp", make_inputs(1)[0])
                waiter = asyncio.ensure_future(decision.result(30))
                await asyncio.sleep(0)
                waiter.cancel()
                with pytest.raises(asyncio.CancelledError):
                    await waiter
                # The request itself stays in flight; a later await works.
                return await decision.result(30)

        assert asyncio.run(scenario()).shape == (1, 4)


def gateway_call(address, method, path, payload=None):
    """One blocking HTTP exchange -> (status, content type, body bytes)."""
    host, port = address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    body = json.dumps(payload) if payload is not None else None
    headers = {"Content-Type": "application/json"} if body else {}
    conn.request(method, path, body, headers)
    response = conn.getresponse()
    return response.status, response.getheader("Content-Type"), response.read()


class TestGateway:
    def test_infer_metrics_and_health_routes(self, registry):
        telemetry = TelemetryCollector()
        admission = AdmissionController(AdmissionPolicy(max_queue_samples_per_model=8))
        inputs = make_inputs(1)[0]
        direct = registry.engine("mlp").run(inputs)

        async def scenario():
            server = AsyncInferenceServer(
                registry, POLICY, telemetry=telemetry, admission=admission
            )
            async with server, AsyncGateway(server) as gateway:
                address = gateway.address

                infer = {"model": "mlp", "inputs": inputs.tolist()}
                status, ctype, body = await asyncio.to_thread(
                    gateway_call, address, "POST", "/v1/infer", infer
                )
                assert status == 200 and ctype.startswith("application/json")
                reply = json.loads(body)
                assert np.array_equal(np.asarray(reply["outputs"]), direct)
                assert reply["decision"]["status"] == "accepted"

                oversized = {"model": "mlp", "inputs": np.zeros((64, 16)).tolist()}
                status, _, body = await asyncio.to_thread(
                    gateway_call, address, "POST", "/v1/infer", oversized
                )
                assert status == 429  # shed by the queue-depth cap
                assert json.loads(body)["decision"]["status"] == "shed"

                status, ctype, body = await asyncio.to_thread(
                    gateway_call, address, "GET", "/metrics"
                )
                assert status == 200 and ctype == PROMETHEUS_CONTENT_TYPE
                assert b"repro_requests_total" in body

                status, _, body = await asyncio.to_thread(
                    gateway_call, address, "GET", "/healthz"
                )
                assert status == 200
                health = json.loads(body)
                assert health["status"] == "ok"
                assert health["admission"]["shed"] == 1

        asyncio.run(scenario())

    def test_models_trace_echo_and_debug_trace_routes(self, registry):
        tracer = Tracer(sample_rate=1.0)
        inputs = make_inputs(1)[0]

        async def scenario():
            server = AsyncInferenceServer(registry, POLICY, tracer=tracer)
            async with server, AsyncGateway(server) as gateway:
                address = gateway.address

                status, _, body = await asyncio.to_thread(
                    gateway_call, address, "GET", "/v1/models"
                )
                assert status == 200
                listing = json.loads(body)
                assert listing["overload_state"] is None  # no admission control
                (entry,) = listing["models"]
                assert entry["name"] == "mlp"
                assert entry["tenant"] == "mlp"
                assert entry["backend"] == "thread"
                assert entry["backlog_samples"] == 0
                assert entry["dispatch_width"] == 1
                assert "replicas" not in entry  # thread backend: no pool

                infer = {"model": "mlp", "inputs": inputs.tolist()}
                status, _, body = await asyncio.to_thread(
                    gateway_call, address, "POST", "/v1/infer", infer
                )
                assert status == 200
                reply = json.loads(body)
                trace_id = reply["trace_id"]
                assert trace_id
                assert reply["decision"]["trace_id"] == trace_id

                status, ctype, body = await asyncio.to_thread(
                    gateway_call, address, "GET", "/debug/trace"
                )
                assert status == 200 and ctype.startswith("application/json")
                dump = json.loads(body)
                assert dump["displayTimeUnit"] == "ms"
                assert any(
                    event["args"].get("trace_id") == trace_id
                    for event in dump["traceEvents"]
                    if event["ph"] == "X"
                )

                status, _, body = await asyncio.to_thread(
                    gateway_call, address, "GET", f"/debug/trace?trace_id={trace_id}"
                )
                assert status == 200
                narrowed = json.loads(body)["traceEvents"]
                assert narrowed
                same = all(e["args"]["trace_id"] == trace_id for e in narrowed)
                assert same
                names = {event["name"] for event in narrowed}
                assert "request" in names and "loop_complete" in names

        asyncio.run(scenario())

    def test_healthz_and_models_report_pool_health(self, tiny_mlp_model):
        admission = AdmissionController(AdmissionPolicy())

        async def scenario(registry):
            server = AsyncInferenceServer(registry, POLICY, admission=admission)
            async with server, AsyncGateway(server) as gateway:
                address = gateway.address
                status, _, body = await asyncio.to_thread(
                    gateway_call, address, "GET", "/healthz"
                )
                assert status == 200
                health = json.loads(body)
                assert health["overload_state"] == "accepting"
                assert health["pools"]["mlp"]["replicas"] == 2
                assert health["pools"]["mlp"]["healthy"] == 2

                status, _, body = await asyncio.to_thread(
                    gateway_call, address, "GET", "/v1/models"
                )
                assert status == 200
                listing = json.loads(body)
                assert listing["overload_state"] == "accepting"
                (entry,) = listing["models"]
                assert entry["backend"] == "process"
                assert entry["dispatch_width"] == 2
                assert entry["replicas"]["healthy"] == 2

        with ModelRegistry() as registry:
            registry.register("mlp", tiny_mlp_model, backend="process", replicas=2)
            asyncio.run(scenario(registry))

    def test_error_mapping(self, registry):
        probes = [
            ("POST", "/v1/infer", {"model": "nope", "inputs": [[0.0] * 16]}, 404),
            ("POST", "/v1/infer", {"inputs": [[0.0] * 16]}, 400),
            ("GET", "/v1/infer", None, 405),
            ("GET", "/nope", None, 404),
            ("POST", "/v1/models", None, 405),
            ("POST", "/debug/trace", None, 405),
            # No telemetry collector and no tracer on this server -> 503.
            ("GET", "/metrics", None, 503),
            ("GET", "/debug/trace", None, 503),
        ]

        async def scenario():
            server = AsyncInferenceServer(registry, POLICY)
            async with server, AsyncGateway(server) as gateway:
                for method, path, payload, expected in probes:
                    status, _ctype, _body = await asyncio.to_thread(
                        gateway_call, gateway.address, method, path, payload
                    )
                    assert status == expected, (method, path, status)

        asyncio.run(scenario())
