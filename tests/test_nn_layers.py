"""Tests for quantized layers and the TensorQuant activation spec."""

import numpy as np
import pytest

from repro.nn import functional as F
from repro.nn.layers import (
    AvgPool2d,
    Conv2d,
    Flatten,
    GlobalAvgPool,
    Linear,
    MaxPool2d,
    ReLU,
    TensorQuant,
)
from repro.nn.synthetic import synthetic_conv_weights, synthetic_linear_weights


class TestTensorQuant:
    def test_unsigned_roundtrip(self):
        quant = TensorQuant(scale=0.1, zero_point=0)
        values = np.linspace(0, 20, 50)
        assert np.max(np.abs(quant.dequantize(quant.quantize(values)) - values)) <= 0.05

    def test_signed_roundtrip(self):
        quant = TensorQuant(scale=0.05, zero_point=0, signed=True)
        values = np.linspace(-5, 5, 50)
        assert np.max(np.abs(quant.dequantize(quant.quantize(values)) - values)) <= 0.03

    def test_from_values_unsigned_covers_range(self):
        quant = TensorQuant.from_values(np.array([0.0, 12.7]))
        assert quant.quantize(np.array([12.7]))[0] == 255

    def test_from_values_signed_symmetric(self):
        quant = TensorQuant.from_values(np.array([-3.0, 2.0]), signed=True)
        assert quant.zero_point == 0
        assert quant.quantize(np.array([-3.0]))[0] == -127

    def test_rejects_bad_scale(self):
        with pytest.raises(ValueError):
            TensorQuant(scale=0.0)

    def test_rejects_zero_point_outside_range(self):
        with pytest.raises(ValueError):
            TensorQuant(scale=1.0, zero_point=-3)


class TestLinearLayer:
    def _layer(self, rng, fuse_relu=True):
        layer = Linear(
            "fc",
            synthetic_linear_weights(6, 20, rng, std=0.2),
            bias=rng.normal(0, 0.05, 6),
            fuse_relu=fuse_relu,
        )
        inputs = np.abs(rng.normal(0, 1, size=(64, 20)))
        layer.calibrate(inputs, layer.forward_float(inputs))
        return layer, inputs

    def test_weight_codes_are_unsigned_8bit(self, rng):
        layer, _ = self._layer(rng)
        assert layer.weight_codes.shape == (20, 6)
        assert layer.weight_codes.min() >= 0 and layer.weight_codes.max() <= 255

    def test_quantized_forward_close_to_float(self, rng):
        layer, inputs = self._layer(rng)
        codes = layer.input_quant.quantize(inputs)
        out_codes, out_quant = layer.forward_quantized(codes, layer.input_quant)
        float_out = layer.forward_float(inputs)
        error = np.abs(out_quant.dequantize(out_codes) - float_out)
        assert error.mean() < 0.05 * max(float_out.max(), 1.0)

    def test_relu_fusion_makes_outputs_nonnegative(self, rng):
        layer, inputs = self._layer(rng, fuse_relu=True)
        codes = layer.input_quant.quantize(inputs)
        out_codes, out_quant = layer.forward_quantized(codes, layer.input_quant)
        assert out_quant.dequantize(out_codes).min() >= 0

    def test_pim_hook_receives_raw_codes(self, rng):
        layer, inputs = self._layer(rng)
        captured = {}

        def hook(patch_codes, hooked_layer):
            captured["shape"] = patch_codes.shape
            captured["layer"] = hooked_layer
            return patch_codes @ hooked_layer.weight_codes

        codes = layer.input_quant.quantize(inputs)
        layer.forward_quantized(codes, layer.input_quant, pim_matmul=hook)
        assert captured["layer"] is layer
        assert captured["shape"] == (64, 20)

    def test_exact_hook_matches_no_hook(self, rng):
        layer, inputs = self._layer(rng)
        codes = layer.input_quant.quantize(inputs)
        ref, _ = layer.forward_quantized(codes, layer.input_quant)
        hooked, _ = layer.forward_quantized(
            codes,
            layer.input_quant,
            pim_matmul=lambda x,
            l: x @ l.weight_codes,
        )
        assert np.array_equal(ref, hooked)

    def test_uncalibrated_layer_raises(self, rng):
        layer = Linear("fc", synthetic_linear_weights(4, 8, rng))
        with pytest.raises(RuntimeError):
            layer.forward_quantized(np.zeros((1, 8), dtype=int), TensorQuant(1.0))

    def test_macs_and_weights(self, rng):
        layer, _ = self._layer(rng)
        assert layer.n_weights == 120
        assert layer.macs((20,)) == 120

    def test_output_shape_validation(self, rng):
        layer, _ = self._layer(rng)
        assert layer.output_shape((20,)) == (6,)
        with pytest.raises(ValueError):
            layer.output_shape((21,))

    def test_rejects_bad_weight_rank(self):
        with pytest.raises(ValueError):
            Linear("fc", np.zeros((2, 3, 4)))

    def test_rejects_bad_bias_shape(self, rng):
        with pytest.raises(ValueError):
            Linear("fc", synthetic_linear_weights(4, 8, rng), bias=np.zeros(3))


class TestConv2dLayer:
    def _layer(self, rng):
        layer = Conv2d(
            "conv",
            synthetic_conv_weights(4, 3, 3, rng, std=0.3),
            stride=1,
            padding=1,
            fuse_relu=True,
        )
        inputs = np.abs(rng.normal(0, 1, size=(2, 3, 6, 6)))
        layer.calibrate(inputs, layer.forward_float(inputs))
        return layer, inputs

    def test_float_forward_matches_functional(self, rng):
        layer, inputs = self._layer(rng)
        expected = F.relu(F.conv2d(inputs, layer.weights, layer.bias, 1, 1))
        assert np.allclose(layer.forward_float(inputs), expected)

    def test_output_shape(self, rng):
        layer, _ = self._layer(rng)
        assert layer.output_shape((3, 6, 6)) == (4, 6, 6)

    def test_macs_counts_positions(self, rng):
        layer, _ = self._layer(rng)
        assert layer.macs((3, 6, 6)) == 4 * 3 * 9 * 36

    def test_quantized_forward_shape_and_error(self, rng):
        layer, inputs = self._layer(rng)
        codes = layer.input_quant.quantize(inputs)
        out_codes, out_quant = layer.forward_quantized(codes, layer.input_quant)
        assert out_codes.shape == (2, 4, 6, 6)
        error = np.abs(out_quant.dequantize(out_codes) - layer.forward_float(inputs))
        assert error.mean() < 0.1 * layer.forward_float(inputs).max()

    def test_padding_uses_zero_point(self, rng):
        # Quantized padding must represent real zero, not code zero.
        layer, inputs = self._layer(rng)
        codes = layer.input_quant.quantize(inputs)
        patches, _ = layer._to_patches(codes, layer.input_quant.zero_point)
        # Corner patch contains padded entries equal to the zero point.
        corner = patches[0].reshape(3, 3, 3)
        assert np.all(corner[:, 0, 0] == layer.input_quant.zero_point)

    def test_rejects_non_square_kernels(self):
        with pytest.raises(ValueError):
            Conv2d("c", np.zeros((2, 3, 3, 5)))

    def test_channel_mismatch_raises(self, rng):
        layer, _ = self._layer(rng)
        with pytest.raises(ValueError):
            layer.output_shape((4, 6, 6))


class TestShapeOnlyLayers:
    def test_relu_quantized_clamps_at_zero_point(self):
        quant = TensorQuant(scale=0.1, zero_point=10)
        out, _ = ReLU().forward_quantized(np.array([[5, 15]]), quant)
        assert np.array_equal(out, [[10, 15]])

    def test_maxpool_quantized_matches_float(self, rng):
        codes = rng.integers(0, 255, size=(1, 2, 4, 4))
        quant = TensorQuant(scale=0.1)
        out, _ = MaxPool2d(2).forward_quantized(codes, quant)
        assert np.array_equal(out, F.maxpool2d(codes.astype(float), 2).astype(int))

    def test_avgpool_quantized_rounds(self):
        codes = np.array([[[[0, 1], [2, 3]]]])
        out, _ = AvgPool2d(2).forward_quantized(codes, TensorQuant(scale=0.1))
        assert out[0, 0, 0, 0] == 2  # mean 1.5 rounds to 2 (banker's rounding)

    def test_global_avg_pool_shapes(self):
        out, _ = GlobalAvgPool().forward_quantized(
            np.ones((2, 3, 4, 4), dtype=int), TensorQuant(scale=0.1)
        )
        assert out.shape == (2, 3)

    def test_flatten(self):
        out, _ = Flatten().forward_quantized(
            np.zeros((2, 3, 4, 4), dtype=int), TensorQuant(scale=0.1)
        )
        assert out.shape == (2, 48)
        assert Flatten().output_shape((3, 4, 4)) == (48,)

    def test_pool_output_shapes(self):
        assert MaxPool2d(2).output_shape((8, 6, 6)) == (8, 3, 3)
        assert AvgPool2d(3, stride=2).output_shape((8, 7, 7)) == (8, 3, 3)
        assert GlobalAvgPool().output_shape((8, 7, 7)) == (8,)
