"""Tests for the component library and architecture specifications."""

import pytest

from repro.hw.architecture import (
    FORMS_ARCH,
    ISAAC_ARCH,
    RAELLA_65NM_ARCH,
    RAELLA_65NM_NO_SPEC_ARCH,
    RAELLA_ARCH,
    RAELLA_NO_SPEC_ARCH,
    TIMELY_ARCH,
    ArchitectureSpec,
    OperandStatistics,
)
from repro.hw.components import ComponentLibrary, TechnologyNode


class TestComponentLibrary:
    def test_adc_energy_decreases_with_resolution(self):
        lib = ComponentLibrary()
        assert lib.adc_energy_pj(7) < lib.adc_energy_pj(8) < lib.adc_energy_pj(10)

    def test_adc_energy_at_reference_resolution(self):
        lib = ComponentLibrary()
        assert lib.adc_energy_pj(8) == pytest.approx(lib.adc_energy_8b_pj)

    def test_adc_energy_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            ComponentLibrary().adc_energy_pj(0)

    def test_adc_area_scaling(self):
        lib = ComponentLibrary()
        assert lib.adc_area_mm2(9) > lib.adc_area_mm2(8)

    def test_scaled_library(self):
        lib = ComponentLibrary().scaled(2.0)
        assert lib.adc_energy_8b_pj == pytest.approx(
            2 * ComponentLibrary().adc_energy_8b_pj
        )
        assert lib.sram_energy_per_byte_pj == pytest.approx(
            2 * ComponentLibrary().sram_energy_per_byte_pj
        )

    def test_technology_node_scaling(self):
        node = TechnologyNode(feature_nm=64.0)
        assert node.energy_scale(32.0) == pytest.approx(4.0)

    def test_timely_library_has_cheaper_converts(self):
        timely = ComponentLibrary.for_timely_components()
        assert timely.adc_energy_pj(8) < ComponentLibrary().adc_energy_pj(8)
        assert timely.technology.feature_nm == 65.0


class TestOperandStatistics:
    def test_defaults_valid(self):
        stats = OperandStatistics()
        assert 0 <= stats.speculation_failure_rate <= 1

    def test_unsigned_weights_have_higher_conductance(self):
        assert (
            OperandStatistics.for_unsigned_weights().weight_conductance_fraction
            > OperandStatistics().weight_conductance_fraction
        )

    def test_bit_serial_statistics_need_fewer_pulses(self):
        assert (
            OperandStatistics.for_bit_serial_offsets().avg_input_pulses_per_operand
            < OperandStatistics().avg_input_pulses_per_operand
        )

    def test_validation(self):
        with pytest.raises(ValueError):
            OperandStatistics(speculation_failure_rate=2.0)
        with pytest.raises(ValueError):
            OperandStatistics(weight_conductance_fraction=-0.1)

    def test_calibration_from_layer_statistics(self):
        from repro.core.executor import LayerStatistics

        stats = LayerStatistics(speculation_slots=100, speculation_failures=5)
        calibrated = OperandStatistics.from_layer_statistics(stats)
        assert calibrated.speculation_failure_rate == pytest.approx(0.05)


class TestArchitectureSpecs:
    def test_raella_defaults_follow_paper(self):
        assert RAELLA_ARCH.crossbar_rows == 512
        assert RAELLA_ARCH.adc_bits == 7
        assert RAELLA_ARCH.n_tiles == 743
        assert RAELLA_ARCH.typical_weight_slices == 3
        assert RAELLA_ARCH.cycles_per_presentation == 11

    def test_isaac_defaults_follow_paper(self):
        assert ISAAC_ARCH.crossbar_rows == 128
        assert ISAAC_ARCH.adc_bits == 8
        assert ISAAC_ARCH.n_tiles == 1024
        assert ISAAC_ARCH.typical_weight_slices == 4
        assert not ISAAC_ARCH.speculative

    def test_forms_is_pruned_isaac(self):
        assert FORMS_ARCH.mac_reduction_factor == pytest.approx(2.0)
        assert FORMS_ARCH.requires_retraining
        assert FORMS_ARCH.limits_weight_count

    def test_timely_metadata(self):
        assert TIMELY_ARCH.requires_retraining
        assert TIMELY_ARCH.fidelity_loss == "high"

    def test_no_spec_variants(self):
        assert not RAELLA_NO_SPEC_ARCH.speculative
        assert RAELLA_NO_SPEC_ARCH.cycles_per_presentation == 8
        assert not RAELLA_65NM_NO_SPEC_ARCH.speculative

    def test_65nm_variant_uses_timely_components(self):
        assert RAELLA_65NM_ARCH.components.technology.feature_nm == 65.0

    def test_total_crossbars(self):
        assert RAELLA_ARCH.total_crossbars == 743 * 32

    def test_weight_slices_for_last_layer(self):
        assert RAELLA_ARCH.weight_slices_for_layer(9, 10) == 8
        assert RAELLA_ARCH.weight_slices_for_layer(0, 10) == 3

    def test_converts_per_column_with_speculation(self):
        expected = 3.0 + RAELLA_ARCH.operand_stats.speculation_failure_rate * 8
        assert RAELLA_ARCH.converts_per_column_per_presentation() == pytest.approx(
            expected
        )

    def test_converts_per_column_without_speculation(self):
        assert ISAAC_ARCH.converts_per_column_per_presentation() == pytest.approx(8.0)

    def test_with_changes_copy(self):
        changed = RAELLA_ARCH.with_changes(n_tiles=10)
        assert changed.n_tiles == 10 and RAELLA_ARCH.n_tiles == 743

    def test_rejects_invalid_spec(self):
        with pytest.raises(ValueError):
            ArchitectureSpec(name="bad", crossbar_rows=0)
        with pytest.raises(ValueError):
            ArchitectureSpec(name="bad", mac_reduction_factor=0.5)
