"""Tests for bit-slicing primitives."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic.bits import (
    bit_density,
    min_bits_signed,
    min_bits_unsigned,
    reassemble_slices,
    signed_crop,
    signed_slices,
    slice_shifts,
    unsigned_slices,
)


class TestSliceShifts:
    def test_shifts_for_4_2_2(self):
        assert slice_shifts((4, 2, 2)) == (4, 2, 0)

    def test_shifts_for_bit_serial(self):
        assert slice_shifts((1,) * 8) == tuple(range(7, -1, -1))

    def test_single_slice_has_zero_shift(self):
        assert slice_shifts((8,)) == (0,)

    def test_rejects_non_positive_widths(self):
        with pytest.raises(ValueError):
            slice_shifts((4, 0, 4))

    def test_rejects_empty_widths(self):
        with pytest.raises(ValueError):
            slice_shifts(())


class TestUnsignedSlices:
    def test_slices_known_value(self):
        # 0b10110101 = 181 -> high nibble 0b1011=11, low nibble 0b0101=5
        parts = unsigned_slices([181], (4, 4))
        assert parts[0][0] == 11
        assert parts[1][0] == 5

    def test_slices_4_2_2(self):
        parts = unsigned_slices([0b11100110], (4, 2, 2))
        assert [int(p[0]) for p in parts] == [0b1110, 0b01, 0b10]

    def test_roundtrip_reassembly(self):
        values = np.arange(256)
        parts = unsigned_slices(values, (3, 3, 2))
        assert np.array_equal(reassemble_slices(parts, (3, 3, 2)), values)

    def test_slice_values_bounded_by_width(self):
        values = np.arange(256)
        for part, width in zip(unsigned_slices(values, (2, 2, 2, 2)), (2, 2, 2, 2)):
            assert part.max() < (1 << width)
            assert part.min() >= 0

    def test_rejects_negative_values(self):
        with pytest.raises(ValueError):
            unsigned_slices([-1], (4, 4))

    def test_rejects_out_of_range_values(self):
        with pytest.raises(ValueError):
            unsigned_slices([256], (4, 4))

    def test_rejects_non_integer_floats(self):
        with pytest.raises(TypeError):
            unsigned_slices([1.5], (4, 4))

    def test_accepts_integer_valued_floats(self):
        parts = unsigned_slices(np.array([3.0]), (4, 4))
        assert parts[1][0] == 3

    def test_preserves_shape(self):
        values = np.arange(12).reshape(3, 4)
        parts = unsigned_slices(values, (4, 4))
        assert parts[0].shape == (3, 4)


class TestSignedCrop:
    def test_matches_paper_definition_positive(self):
        # D(7..4, x) of 0b10110101 keeps the high nibble.
        assert signed_crop([0b10110101], 7, 4)[0] == 0b1011

    def test_preserves_sign(self):
        assert signed_crop([-0b10110101], 7, 4)[0] == -0b1011

    def test_zero_stays_zero(self):
        assert signed_crop([0], 7, 0)[0] == 0

    def test_low_bits_crop(self):
        assert signed_crop([0b10110101], 3, 0)[0] == 0b0101

    def test_single_bit_crop(self):
        assert signed_crop([0b100], 2, 2)[0] == 1

    def test_rejects_inverted_range(self):
        with pytest.raises(ValueError):
            signed_crop([1], 2, 5)

    def test_rejects_negative_low(self):
        with pytest.raises(ValueError):
            signed_crop([1], 2, -1)


class TestSignedSlices:
    def test_signed_roundtrip(self):
        values = np.arange(-255, 256)
        parts = signed_slices(values, (4, 2, 2))
        assert np.array_equal(reassemble_slices(parts, (4, 2, 2)), values)

    def test_all_slices_carry_sign(self):
        parts = signed_slices([-0b10110101], (4, 4))
        assert parts[0][0] == -0b1011
        assert parts[1][0] == -0b0101

    def test_rejects_magnitude_overflow(self):
        with pytest.raises(ValueError):
            signed_slices([300], (4, 4))


class TestBitDensity:
    def test_all_ones_has_density_one(self):
        assert np.allclose(bit_density([255, 255], 8), 1.0)

    def test_all_zeros_has_density_zero(self):
        assert np.allclose(bit_density([0, 0], 8), 0.0)

    def test_lsb_density_of_odd_values(self):
        density = bit_density([1, 3, 5, 7], 8)
        assert density[0] == 1.0
        assert density[3] == 0.0

    def test_uses_magnitudes_for_signed_values(self):
        assert np.allclose(bit_density([-1], 2), [1.0, 0.0])

    def test_rejects_empty_input(self):
        with pytest.raises(ValueError):
            bit_density(np.array([], dtype=np.int64), 8)

    def test_rejects_non_positive_bits(self):
        with pytest.raises(ValueError):
            bit_density([1], 0)

    def test_right_skewed_values_have_sparse_high_bits(self):
        rng = np.random.default_rng(0)
        values = np.clip(np.round(np.abs(rng.normal(0, 20, 10_000))), 0, 255)
        density = bit_density(values.astype(int), 8)
        assert density[7] < 0.05
        assert density[0] > 0.3


class TestMinBits:
    def test_unsigned_min_bits(self):
        assert min_bits_unsigned([0, 1]) == 1
        assert min_bits_unsigned([255]) == 8
        assert min_bits_unsigned([256]) == 9

    def test_unsigned_rejects_negative(self):
        with pytest.raises(ValueError):
            min_bits_unsigned([-1])

    def test_signed_min_bits(self):
        assert min_bits_signed([-64, 63]) == 7
        assert min_bits_signed([-65]) == 8
        assert min_bits_signed([0]) == 1


class TestBitProperties:
    @given(
        st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=50),
        st.sampled_from([(4, 4), (4, 2, 2), (2, 2, 2, 2), (1,) * 8, (3, 3, 2)]),
    )
    @settings(max_examples=60, deadline=None)
    def test_unsigned_slice_reassembly_roundtrips(self, values, widths):
        parts = unsigned_slices(values, widths)
        assert np.array_equal(reassemble_slices(parts, widths), np.asarray(values))

    @given(
        st.lists(st.integers(min_value=-255, max_value=255), min_size=1, max_size=50),
        st.sampled_from([(4, 4), (4, 2, 2), (1,) * 8]),
    )
    @settings(max_examples=60, deadline=None)
    def test_signed_slice_reassembly_roundtrips(self, values, widths):
        parts = signed_slices(values, widths)
        assert np.array_equal(reassemble_slices(parts, widths), np.asarray(values))

    @given(st.integers(min_value=-255, max_value=255))
    @settings(max_examples=60, deadline=None)
    def test_signed_crop_decomposition_sums_to_value(self, value):
        total = sum(
            int(signed_crop([value], shift + width - 1, shift)[0]) << shift
            for width, shift in zip((4, 2, 2), (4, 2, 0))
        )
        assert total == value
