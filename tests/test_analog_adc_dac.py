"""Tests for ADC and DAC models."""

import numpy as np
import pytest

from repro.analog.adc import SaturatingADC, TruncatingADC
from repro.analog.dac import PulseTrainDAC


class TestSaturatingADC:
    def test_range_of_7bit_adc(self):
        adc = SaturatingADC(bits=7)
        assert adc.min_value == -64
        assert adc.max_value == 63

    def test_in_range_values_pass_exactly(self):
        adc = SaturatingADC(bits=7)
        values = np.arange(-64, 64)
        result = adc.convert(values)
        assert np.array_equal(result.values, values)

    def test_saturation_clamps_to_bounds(self):
        adc = SaturatingADC(bits=7)
        result = adc.convert(np.array([1000, -1000]))
        assert list(result.values) == [63, -64]
        assert result.saturated.all()

    def test_saturation_rate(self):
        adc = SaturatingADC(bits=7)
        result = adc.convert(np.array([0, 10, 100, -100]))
        assert result.saturation_rate == 0.5

    def test_noisy_values_are_rounded(self):
        adc = SaturatingADC(bits=7)
        assert adc.convert(np.array([10.4])).values[0] == 10
        assert adc.convert(np.array([10.6])).values[0] == 11

    def test_mask_restricts_conversions(self):
        adc = SaturatingADC(bits=7)
        result = adc.convert(np.array([5, 100]), mask=np.array([False, True]))
        assert result.values[0] == 0
        assert result.values[1] == 63
        assert result.n_converts == 1

    def test_mask_shape_mismatch_raises(self):
        adc = SaturatingADC(bits=7)
        with pytest.raises(ValueError):
            adc.convert(np.zeros(3), mask=np.zeros(2, dtype=bool))

    def test_detects_saturation_at_bounds(self):
        adc = SaturatingADC(bits=7)
        detected = adc.detects_saturation(np.array([63, -64, 0]))
        assert list(detected) == [True, True, False]

    def test_boundary_values_count_as_possible_saturation(self):
        # An exact 63 is indistinguishable from a clipped 100, so RAELLA
        # conservatively treats it as a failed speculation.
        adc = SaturatingADC(bits=7)
        result = adc.convert(np.array([63]))
        assert result.saturated[0]

    def test_rejects_bad_resolution(self):
        with pytest.raises(ValueError):
            SaturatingADC(bits=0)


class TestTruncatingADC:
    def test_exact_when_sum_fits(self):
        adc = TruncatingADC(bits=8)
        result = adc.convert(np.array([200]), sum_bits=8)
        assert result.values[0] == 200

    def test_drops_lsbs_when_sum_is_wider(self):
        adc = TruncatingADC(bits=8)
        result = adc.convert(np.array([0b1111111111]), sum_bits=10)
        assert result.values[0] == 0b1111111100

    def test_lsbs_dropped_count(self):
        adc = TruncatingADC(bits=8)
        assert adc.lsbs_dropped(24) == 16
        assert adc.lsbs_dropped(8) == 0

    def test_never_reports_saturation(self):
        adc = TruncatingADC(bits=8)
        assert not adc.convert(np.array([10**6]), sum_bits=20).saturated.any()

    def test_rejects_bad_sum_bits(self):
        with pytest.raises(ValueError):
            TruncatingADC(bits=8).convert(np.array([1]), sum_bits=0)

    def test_truncation_error_bounded(self):
        adc = TruncatingADC(bits=8)
        values = np.arange(0, 1 << 12, 7)
        result = adc.convert(values, sum_bits=12)
        assert np.all(np.abs(values - result.values) < (1 << 4))


class TestPulseTrainDAC:
    def test_max_value(self):
        assert PulseTrainDAC(bits=4).max_value == 15

    def test_pulses_equal_value(self):
        dac = PulseTrainDAC(bits=4)
        assert np.array_equal(dac.pulses(np.array([0, 7, 15])), [0, 7, 15])

    def test_rejects_out_of_range_pulses(self):
        with pytest.raises(ValueError):
            PulseTrainDAC(bits=4).pulses(np.array([16]))

    def test_validate_slice_checks_width(self):
        dac = PulseTrainDAC(bits=4)
        with pytest.raises(ValueError):
            dac.validate_slice(np.array([1]), slice_bits=5)
        with pytest.raises(ValueError):
            dac.validate_slice(np.array([4]), slice_bits=2)

    def test_narrow_slices_use_low_levels(self):
        dac = PulseTrainDAC(bits=4)
        values = dac.validate_slice(np.array([0, 1, 2, 3]), slice_bits=2)
        assert values.max() == 3

    def test_stream_time_scales_with_levels(self):
        dac = PulseTrainDAC(bits=4, pulse_width_ns=1.0)
        assert dac.stream_time_ns(4) == 30.0
        assert dac.stream_time_ns(1) == 2.0

    def test_energy_proportional_to_pulses(self):
        dac = PulseTrainDAC(bits=4, energy_per_pulse_fj=2.0)
        assert dac.energy_fj(np.array([3, 5])) == pytest.approx(16.0)

    def test_rejects_bad_configuration(self):
        with pytest.raises(ValueError):
            PulseTrainDAC(bits=0)
        with pytest.raises(ValueError):
            PulseTrainDAC(pulse_width_ns=0)
