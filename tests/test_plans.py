"""Tests for compiled execution plans (:mod:`repro.runtime.plan`).

Three layers of guarantees:

* **artifact** -- a :class:`CompiledLayerPlan` is a faithful, pickle-able
  freeze of one executor's derivation: adopting it (fresh, or after a
  pickle round trip, or with float32 operands) changes no output bit and
  no statistics counter relative to the unplanned vectorized path;
* **cache** -- the registry's fingerprint-keyed :class:`ModelPlanCache`
  reuses the *same* plan object across re-registrations that change only
  the hosting (thread<->process backend swap, rolling ``replace``) and
  compiles a fresh one when the :class:`PimLayerConfig` or the weights
  actually change;
* **transport** -- a plan shipped inside an :class:`EngineSpec` boots a
  replica worker to bit-identical outputs.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.analog.noise import GaussianColumnNoise, NoiselessModel
from repro.arithmetic.slicing import Slicing
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.runtime import (
    ExecutorPool,
    ModelPlan,
    NetworkEngine,
    ProcessEngine,
    VectorizedLayerExecutor,
    compile_model_plan,
)
from repro.serve import ModelRegistry

from tests.test_runtime_engine import PARITY_CONFIGS, assert_stats_equal


def planned_and_unplanned(layer, config, noise=None, float32=False):
    """A (planned, unplanned) executor pair for the same layer/config."""
    unplanned = VectorizedLayerExecutor(layer, config, noise=noise, float32=float32)
    planned = VectorizedLayerExecutor(layer, config, noise=noise, float32=float32)
    plan = planned.compile_layer_plan()
    assert planned.layer_plan is plan
    return planned, unplanned, plan


class TestCompiledLayerPlan:
    @pytest.mark.parametrize("name", sorted(PARITY_CONFIGS))
    def test_planned_outputs_and_stats_bit_identical(
        self, name, tiny_linear_layer, tiny_patches
    ):
        config = PARITY_CONFIGS[name]
        planned, unplanned, _ = planned_and_unplanned(tiny_linear_layer, config)
        assert np.array_equal(
            planned.matmul(tiny_patches), unplanned.matmul(tiny_patches)
        )
        assert_stats_equal(planned.stats, unplanned.stats)

    def test_plan_survives_pickle(self, tiny_linear_layer, tiny_patches):
        config = PARITY_CONFIGS["raella"]
        planned, unplanned, plan = planned_and_unplanned(tiny_linear_layer, config)
        revived = pickle.loads(pickle.dumps(plan))
        assert revived is not plan
        seeded = VectorizedLayerExecutor(tiny_linear_layer, config, plan=revived)
        assert seeded.layer_plan is revived
        assert np.array_equal(
            seeded.matmul(tiny_patches), unplanned.matmul(tiny_patches)
        )
        assert_stats_equal(seeded.stats, unplanned.stats)

    def test_float32_plan_bit_identical(self, tiny_linear_layer, tiny_patches):
        config = PARITY_CONFIGS["raella_multi_chunk"]
        planned, _, _ = planned_and_unplanned(tiny_linear_layer, config, float32=True)
        reference = PimLayerExecutor(tiny_linear_layer, config)
        assert np.array_equal(
            planned.matmul(tiny_patches), reference.matmul(tiny_patches)
        )

    def test_noisy_plan_keeps_seeded_draw_order(self, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig()
        planned, _, plan = planned_and_unplanned(
            tiny_linear_layer, config, noise=GaussianColumnNoise(level=0.05, seed=11)
        )
        assert not plan.fast_path_eligible  # noisy layers keep the phase loop
        reference = PimLayerExecutor(
            tiny_linear_layer, config, noise=GaussianColumnNoise(level=0.05, seed=11)
        )
        assert np.array_equal(
            planned.matmul(tiny_patches), reference.matmul(tiny_patches)
        )

    def test_adopt_rejects_mismatched_layer_or_config(self, tiny_linear_layer, rng):
        from repro.nn.layers import Linear
        from repro.nn.synthetic import synthetic_linear_weights

        other_layer = Linear("other_fc", synthetic_linear_weights(5, 16, rng))
        inputs = np.abs(rng.normal(0, 1, size=(32, 16)))
        other_layer.calibrate(inputs, other_layer.forward_float(inputs))
        plan = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig()
        ).compile_layer_plan()
        with pytest.raises(ValueError, match="plan"):
            VectorizedLayerExecutor(other_layer, PimLayerConfig(), plan=plan)
        changed = PimLayerConfig(adc_bits=9)
        with pytest.raises(ValueError, match="plan"):
            VectorizedLayerExecutor(tiny_linear_layer, changed, plan=plan)
        assert plan.matches(tiny_linear_layer, PimLayerConfig())
        assert not plan.matches(tiny_linear_layer, changed)

    def test_fast_path_gating(self, tiny_linear_layer):
        eligible = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig()
        ).compile_layer_plan()
        assert eligible.fast_path_eligible
        column_sums = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig(collect_column_sums=True)
        ).compile_layer_plan()
        assert not column_sums.fast_path_eligible

    def test_phase_table_shapes(self, tiny_linear_layer):
        serial = PimLayerConfig(
            speculation=SpeculationMode.BIT_SERIAL,
            serial_input_slicing=Slicing((2, 2, 2, 2)),
        )
        plan = VectorizedLayerExecutor(tiny_linear_layer, serial).compile_layer_plan()
        assert plan.n_phases == 4
        assert plan.spec_indices.size == 0
        assert plan.mode is SpeculationMode.BIT_SERIAL


class TestModelPlan:
    def test_split_points(self, tiny_mlp_model):
        plan = compile_model_plan(tiny_mlp_model, micro_batch=4)
        assert plan.split_points(3) == ()
        assert plan.split_points(4) == ()
        assert plan.split_points(10) == (4, 8)
        unbounded = compile_model_plan(tiny_mlp_model)
        assert unbounded.split_points(100) == ()

    def test_layer_plans_cover_matmul_layers(self, tiny_mlp_model):
        plan = compile_model_plan(tiny_mlp_model)
        for layer in tiny_mlp_model.matmul_layers():
            layer_plan = plan.layer_plan(layer.name)
            assert layer_plan is not None
            assert layer_plan.weight_fingerprint == layer.weight_fingerprint
        assert plan.layer_plan("no_such_layer") is None

    def test_cache_key_sensitivity(self, tiny_mlp_model):
        base = ModelPlan.cache_key(tiny_mlp_model, PimLayerConfig(), None, True, None)
        assert base == ModelPlan.cache_key(
            tiny_mlp_model, PimLayerConfig(), NoiselessModel(), True, None
        )
        assert base != ModelPlan.cache_key(
            tiny_mlp_model, PimLayerConfig(adc_bits=8), None, True, None
        )
        assert base != ModelPlan.cache_key(
            tiny_mlp_model, PimLayerConfig(), None, False, None
        )
        assert base != ModelPlan.cache_key(
            tiny_mlp_model, PimLayerConfig(), None, True, 8
        )
        noisy = GaussianColumnNoise(level=0.05)
        assert base != ModelPlan.cache_key(
            tiny_mlp_model, PimLayerConfig(), noisy, True, None
        )

    def test_engine_build_adopts_plan(self, tiny_mlp_model, rng):
        pool = ExecutorPool()
        plan = compile_model_plan(tiny_mlp_model, micro_batch=8, pool=pool)
        engine = NetworkEngine.build(tiny_mlp_model, pool=pool, plan=plan)
        assert engine.model_plan is plan
        assert engine.micro_batch == 8  # inherited from the plan
        baseline = NetworkEngine.build(tiny_mlp_model, micro_batch=8)
        inputs = np.abs(rng.normal(0, 1, size=(13, 16)))
        assert np.array_equal(engine.run(inputs), baseline.run(inputs))


class TestRegistryPlanCache:
    def test_register_compiles_and_exposes_plan(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        plan = registry.plan("mlp")
        assert isinstance(plan, ModelPlan)
        assert registry.plan_cache.misses == 1
        with pytest.raises(KeyError):
            registry.plan("nope")
        registry.close()

    def test_changed_config_compiles_fresh_plan(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        first = registry.plan("mlp")
        registry.register(
            "mlp", tiny_mlp_model, config=PimLayerConfig(adc_bits=8), replace=True
        )
        second = registry.plan("mlp")
        assert second is not first
        assert second.config != first.config
        assert registry.plan_cache.misses == 2
        registry.close()

    def test_unchanged_reregistration_reuses_plan_identity(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        first = registry.plan("mlp")
        registry.register("mlp", tiny_mlp_model, replace=True)
        assert registry.plan("mlp") is first
        assert registry.plan_cache.hits >= 1
        registry.close()

    def test_backend_swap_reuses_plan_and_stays_bit_identical(
        self, tiny_mlp_model, rng
    ):
        inputs = np.abs(rng.normal(0, 1, size=(6, 16)))
        registry = ModelRegistry()
        try:
            registry.register("mlp", tiny_mlp_model)
            thread_plan = registry.plan("mlp")
            thread_outputs = registry.engine("mlp").run(inputs)
            registry.register("mlp", tiny_mlp_model, backend="process", replace=True)
            assert registry.plan("mlp") is thread_plan
            process_outputs = registry.engine("mlp").run(inputs)
            registry.register("mlp", tiny_mlp_model, replace=True)
            assert registry.plan("mlp") is thread_plan
            assert np.array_equal(process_outputs, thread_outputs)
        finally:
            registry.close()

    def test_rolling_replace_reuses_plan(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        registry = ModelRegistry()
        try:
            registry.register("mlp", tiny_mlp_model, backend="process", replicas=2)
            first = registry.plan("mlp")
            before = registry.engine("mlp").run(inputs)
            registry.register(
                "mlp",
                tiny_mlp_model,
                backend="process",
                replicas=2,
                replace=True,
            )
            assert registry.plan("mlp") is first  # rolled, not recompiled
            assert np.array_equal(registry.engine("mlp").run(inputs), before)
        finally:
            registry.close()

    def test_sharded_engines_have_no_plan(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model, sharded=True)
        assert registry.plan("mlp") is None
        registry.close()

    def test_unregister_keeps_cache_warm(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        first = registry.plan("mlp")
        registry.unregister("mlp")
        registry.register("mlp", tiny_mlp_model)
        assert registry.plan("mlp") is first  # LRU outlives the hosting
        registry.close()


class TestPlanTransport:
    def test_process_engine_runs_shipped_plan(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(5, 16)))
        plan = compile_model_plan(tiny_mlp_model)
        baseline = NetworkEngine.build(tiny_mlp_model).run(inputs)
        engine = ProcessEngine.launch(tiny_mlp_model, plan=plan)
        try:
            outputs = engine.run(inputs)
            assert np.array_equal(outputs, baseline)
            assert not outputs.flags.writeable  # pooled zero-copy view
        finally:
            engine.close()
