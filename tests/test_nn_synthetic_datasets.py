"""Tests for synthetic generators, datasets and the SGD trainer."""

import numpy as np
import pytest

from repro.nn.datasets import gaussian_clusters, procedural_images
from repro.nn.synthetic import (
    negative_skewed_filter_weights,
    synthetic_activations,
    synthetic_conv_weights,
    synthetic_images,
    synthetic_linear_weights,
    synthetic_signed_activations,
)
from repro.nn.training import evaluate_accuracy, train_mlp


class TestSyntheticWeights:
    def test_conv_weight_shape(self, rng):
        assert synthetic_conv_weights(8, 3, 5, rng).shape == (8, 3, 5, 5)

    def test_linear_weight_shape(self, rng):
        assert synthetic_linear_weights(10, 20, rng).shape == (10, 20)

    def test_per_filter_means_differ(self, rng):
        weights = synthetic_conv_weights(64, 16, 3, rng, mean_spread=0.05)
        per_filter_means = weights.reshape(64, -1).mean(axis=1)
        assert per_filter_means.std() > 0.01

    def test_zero_mean_spread_gives_similar_filters(self, rng):
        weights = synthetic_conv_weights(64, 16, 3, rng, std=0.05, mean_spread=0.0)
        per_filter_means = weights.reshape(64, -1).mean(axis=1)
        assert np.abs(per_filter_means).max() < 0.02

    def test_negative_skewed_filter_is_mostly_negative(self, rng):
        weights = negative_skewed_filter_weights(1000, rng)
        assert np.mean(weights < 0) > 0.6


class TestSyntheticActivations:
    def test_activations_nonnegative_and_sparse(self, rng):
        acts = synthetic_activations((1000,), rng, sparsity=0.4)
        assert acts.min() >= 0
        assert 0.3 < np.mean(acts == 0) < 0.5

    def test_signed_activations_have_both_signs(self, rng):
        acts = synthetic_signed_activations((1000,), rng)
        assert acts.min() < 0 < acts.max()

    def test_images_shape_and_nonnegativity(self, rng):
        images = synthetic_images(3, (3, 16, 16), rng)
        assert images.shape == (3, 3, 16, 16)
        assert images.min() >= 0

    def test_images_are_reproducible_per_rng_seed(self):
        a = synthetic_images(2, (3, 8, 8), np.random.default_rng(5))
        b = synthetic_images(2, (3, 8, 8), np.random.default_rng(5))
        assert np.array_equal(a, b)


class TestDatasets:
    def test_gaussian_clusters_shapes(self):
        ds = gaussian_clusters(n_classes=4, n_features=10, n_train=40, n_test=20)
        assert ds.x_train.shape == (40, 10)
        assert ds.x_test.shape == (20, 10)
        assert ds.n_classes == 4

    def test_gaussian_clusters_nonnegative(self):
        ds = gaussian_clusters(n_classes=3, n_features=8, n_train=30, n_test=10)
        assert ds.x_train.min() >= 0

    def test_procedural_images_shapes(self):
        ds = procedural_images(
            n_classes=3, image_shape=(3, 8, 8), n_train=30, n_test=12
        )
        assert ds.x_train.shape == (30, 3, 8, 8)
        assert ds.input_shape == (3, 8, 8)

    def test_rejects_single_class(self):
        with pytest.raises(ValueError):
            gaussian_clusters(n_classes=1)
        with pytest.raises(ValueError):
            procedural_images(n_classes=1)

    def test_mismatched_lengths_rejected(self):
        ds = gaussian_clusters(n_classes=3, n_features=4, n_train=10, n_test=5)
        with pytest.raises(ValueError):
            type(ds)(
                name="bad",
                x_train=ds.x_train,
                y_train=ds.y_train[:-1],
                x_test=ds.x_test,
                y_test=ds.y_test,
            )

    def test_seed_reproducibility(self):
        a = gaussian_clusters(seed=3, n_train=20, n_test=10)
        b = gaussian_clusters(seed=3, n_train=20, n_test=10)
        assert np.array_equal(a.x_train, b.x_train)


class TestTraining:
    def test_mlp_learns_separable_task(self):
        dataset = gaussian_clusters(
            n_classes=4,
            n_features=24,
            n_train=300,
            n_test=100,
            separation=2.5,
            noise=0.6,
            seed=1,
        )
        result = train_mlp(dataset, hidden_sizes=[32], epochs=15, seed=1)
        assert result.float_accuracy > 0.8
        assert result.quantized_accuracy > 0.7
        assert result.loss_history[-1] < result.loss_history[0]

    def test_quantized_model_is_calibrated(self):
        dataset = gaussian_clusters(
            n_classes=3, n_features=12, n_train=90, n_test=30, seed=2
        )
        result = train_mlp(dataset, hidden_sizes=[16], epochs=5, seed=2)
        assert result.model.is_calibrated

    def test_evaluate_accuracy_max_samples(self):
        dataset = gaussian_clusters(
            n_classes=3, n_features=12, n_train=90, n_test=30, seed=2
        )
        result = train_mlp(dataset, hidden_sizes=[16], epochs=5, seed=2)
        flat = dataset
        accuracy = evaluate_accuracy(result.model, flat, max_samples=10)
        assert 0.0 <= accuracy <= 1.0
