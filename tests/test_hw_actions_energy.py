"""Tests for action counting, energy accounting and the Titanium Law."""

import pytest

from repro.hw.actions import count_layer_actions, count_model_actions
from repro.hw.architecture import (
    FORMS_ARCH,
    ISAAC_ARCH,
    RAELLA_ARCH,
    RAELLA_NO_SPEC_ARCH,
)
from repro.hw.energy import EnergyBreakdown, EnergyModel
from repro.hw.titanium import titanium_law
from repro.nn.zoo import LayerShape, model_shapes


@pytest.fixture
def conv_layer() -> LayerShape:
    return LayerShape(
        "conv",
        "conv",
        in_channels=64,
        out_channels=128,
        kernel_h=3,
        kernel_w=3,
        stride=1,
        input_size=28,
    )


@pytest.fixture
def bert_layer() -> LayerShape:
    return LayerShape(
        "ffn",
        "linear",
        in_channels=1024,
        out_channels=4096,
        input_size=384,
        signed_input=True,
    )


class TestActionCounts:
    def test_macs_match_layer_shape(self, conv_layer):
        actions = count_layer_actions(conv_layer, RAELLA_ARCH)
        assert actions.macs == pytest.approx(conv_layer.macs)

    def test_isaac_converts_per_mac_near_quarter(self):
        shapes = model_shapes("resnet18")
        actions = count_model_actions(shapes, ISAAC_ARCH)
        total_converts = sum(a.adc_converts for a in actions)
        total_macs = sum(a.macs for a in actions)
        assert 0.2 < total_converts / total_macs < 0.32

    def test_raella_converts_per_mac_near_paper_value(self):
        shapes = model_shapes("resnet18")
        actions = count_model_actions(shapes, RAELLA_ARCH)
        ratio = sum(a.adc_converts for a in actions) / sum(a.macs for a in actions)
        assert 0.01 < ratio < 0.04  # paper reports 0.018

    def test_row_chunking(self, conv_layer):
        actions = count_layer_actions(conv_layer, ISAAC_ARCH)
        assert actions.n_row_chunks == 5  # 576 rows over 128-row crossbars

    def test_signed_inputs_double_conversions(self, bert_layer):
        signed = count_layer_actions(bert_layer, RAELLA_ARCH)
        unsigned = count_layer_actions(
            LayerShape("ffn", "linear", 1024, 4096, input_size=384), RAELLA_ARCH
        )
        assert signed.adc_converts == pytest.approx(2 * unsigned.adc_converts)

    def test_pruning_reduces_macs(self, conv_layer):
        pruned = count_layer_actions(conv_layer, FORMS_ARCH)
        dense = count_layer_actions(conv_layer, ISAAC_ARCH)
        assert pruned.macs == pytest.approx(dense.macs / 2)

    def test_speculation_reduces_converts(self, conv_layer):
        spec = count_layer_actions(conv_layer, RAELLA_ARCH)
        serial = count_layer_actions(conv_layer, RAELLA_NO_SPEC_ARCH)
        assert spec.adc_converts < serial.adc_converts

    def test_center_ops_only_for_offset_architectures(self, conv_layer):
        assert count_layer_actions(conv_layer, RAELLA_ARCH).center_adds > 0
        assert count_layer_actions(conv_layer, ISAAC_ARCH).center_adds == 0

    def test_last_layer_uses_conservative_slicing(self):
        shapes = model_shapes("resnet18")
        actions = count_model_actions(shapes, RAELLA_ARCH)
        assert actions[-1].n_weight_slices == 8
        assert actions[0].n_weight_slices == 3

    def test_row_utilization_bounded(self, conv_layer):
        actions = count_layer_actions(conv_layer, RAELLA_ARCH)
        assert 0 < actions.row_utilization <= 1


class TestEnergyModel:
    def test_breakdown_totals(self):
        breakdown = EnergyBreakdown(
            name="x", components_pj={"adc": 2e6, "crossbar": 1e6}
        )
        assert breakdown.total_uj == pytest.approx(3.0)
        assert breakdown.fraction("adc") == pytest.approx(2 / 3)

    def test_breakdown_add_and_scale(self):
        a = EnergyBreakdown(name="a", components_pj={"adc": 1.0})
        b = EnergyBreakdown(name="b", components_pj={"adc": 2.0, "dac": 1.0})
        a.add(b)
        assert a.components_pj["adc"] == 3.0
        scaled = a.scaled(2.0)
        assert scaled.components_pj["adc"] == 6.0

    def test_isaac_is_adc_dominated(self):
        breakdown = EnergyModel(ISAAC_ARCH).model_energy(model_shapes("resnet18"))
        assert breakdown.fraction("adc") > 0.5

    def test_raella_uses_less_energy_than_isaac(self):
        shapes = model_shapes("resnet18")
        isaac = EnergyModel(ISAAC_ARCH).model_energy(shapes).total_uj
        raella = EnergyModel(RAELLA_ARCH).model_energy(shapes).total_uj
        assert 2.5 < isaac / raella < 5.5

    def test_batch_scaling(self):
        shapes = model_shapes("shufflenetv2")
        single = EnergyModel(RAELLA_ARCH).model_energy(shapes, batch_size=1).total_pj
        batch = EnergyModel(RAELLA_ARCH).model_energy(shapes, batch_size=4).total_pj
        assert batch == pytest.approx(4 * single)

    def test_energy_per_mac_under_2pj_for_raella(self):
        value = EnergyModel(RAELLA_ARCH).energy_per_mac_pj(model_shapes("resnet50"))
        assert 0.05 < value < 2.0

    def test_crossbar_energy_per_mac_under_100fj_for_isaac(self):
        shapes = model_shapes("resnet18")
        breakdown = EnergyModel(ISAAC_ARCH).model_energy(shapes)
        crossbar_fj_per_mac = breakdown.components_pj[
            "crossbar"
        ] / shapes.total_macs * 1e3
        assert crossbar_fj_per_mac < 150

    def test_programming_energy_positive(self):
        assert EnergyModel(RAELLA_ARCH).programming_energy_pj(model_shapes("shufflenetv2")) > 0

    def test_summary_text(self):
        breakdown = EnergyModel(RAELLA_ARCH).model_energy(model_shapes("shufflenetv2"))
        assert "uJ" in breakdown.summary()


class TestTitaniumLaw:
    def test_terms_multiply_to_adc_energy(self):
        shapes = model_shapes("resnet18")
        terms = titanium_law(shapes, ISAAC_ARCH)
        breakdown = EnergyModel(ISAAC_ARCH).model_energy(shapes)
        assert terms.adc_energy_pj == pytest.approx(
            breakdown.components_pj["adc"], rel=1e-6
        )

    def test_raella_reduces_both_adc_terms(self):
        shapes = model_shapes("resnet18")
        isaac = titanium_law(shapes, ISAAC_ARCH)
        raella = titanium_law(shapes, RAELLA_ARCH)
        assert raella.energy_per_convert_pj < isaac.energy_per_convert_pj
        assert raella.converts_per_mac < isaac.converts_per_mac
        assert raella.macs_per_dnn == isaac.macs_per_dnn

    def test_utilization_bounded(self):
        terms = titanium_law(model_shapes("mobilenetv2"), RAELLA_ARCH)
        assert 0 < terms.utilization <= 1

    def test_pruning_reduces_macs_per_dnn(self):
        shapes = model_shapes("resnet18")
        assert (
            titanium_law(shapes, FORMS_ARCH).macs_per_dnn
            < titanium_law(shapes, ISAAC_ARCH).macs_per_dnn
        )

    def test_as_dict_keys(self):
        terms = titanium_law(model_shapes("shufflenetv2"), RAELLA_ARCH)
        assert set(terms.as_dict()) == {
            "energy_per_convert_pj",
            "converts_per_mac",
            "macs_per_dnn",
            "utilization",
            "adc_energy_uj",
        }
