"""Tests for tensor operations (im2col, conv, pooling, softmax)."""

import numpy as np
import pytest

from repro.nn import functional as F


class TestConvOutputSize:
    def test_same_padding_stride_one(self):
        assert F.conv_output_size(32, 3, 1, 1) == 32

    def test_stride_two(self):
        assert F.conv_output_size(32, 3, 2, 1) == 16

    def test_no_padding(self):
        assert F.conv_output_size(5, 3, 1, 0) == 3

    def test_rejects_impossible_geometry(self):
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)


class TestIm2col:
    def test_patch_count_and_width(self):
        x = np.arange(2 * 3 * 6 * 6, dtype=float).reshape(2, 3, 6, 6)
        patches, (oh, ow) = F.im2col(x, kernel=3, stride=1, padding=1)
        assert (oh, ow) == (6, 6)
        assert patches.shape == (2 * 36, 3 * 9)

    def test_1x1_kernel_is_channel_vector(self):
        x = np.random.default_rng(0).random((1, 4, 3, 3))
        patches, _ = F.im2col(x, kernel=1)
        assert patches.shape == (9, 4)
        assert np.allclose(patches[0], x[0, :, 0, 0])

    def test_rejects_non_4d_input(self):
        with pytest.raises(ValueError):
            F.im2col(np.zeros((3, 3)), kernel=3)


class TestConv2d:
    def test_matches_manual_convolution(self):
        rng = np.random.default_rng(1)
        x = rng.random((1, 2, 5, 5))
        w = rng.random((3, 2, 3, 3))
        out = F.conv2d(x, w, stride=1, padding=0)
        # Manual computation of one output position.
        expected = (x[0, :, 0:3, 0:3] * w[1]).sum()
        assert out[0, 1, 0, 0] == pytest.approx(expected)

    def test_identity_kernel(self):
        x = np.random.default_rng(2).random((1, 1, 4, 4))
        w = np.zeros((1, 1, 3, 3))
        w[0, 0, 1, 1] = 1.0
        out = F.conv2d(x, w, stride=1, padding=1)
        assert np.allclose(out[0, 0], x[0, 0])

    def test_bias_added_per_channel(self):
        x = np.zeros((1, 1, 3, 3))
        w = np.zeros((2, 1, 1, 1))
        out = F.conv2d(x, w, bias=np.array([1.0, -2.0]))
        assert np.allclose(out[0, 0], 1.0)
        assert np.allclose(out[0, 1], -2.0)

    def test_channel_mismatch_raises(self):
        with pytest.raises(ValueError):
            F.conv2d(np.zeros((1, 3, 4, 4)), np.zeros((2, 2, 3, 3)))

    def test_output_shape_with_stride(self):
        out = F.conv2d(
            np.zeros((2, 3, 8, 8)), np.zeros((4, 3, 3, 3)), stride=2, padding=1
        )
        assert out.shape == (2, 4, 4, 4)


class TestPooling:
    def test_maxpool_takes_window_max(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.maxpool2d(x, kernel=2)
        assert np.array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_avgpool_takes_window_mean(self):
        x = np.arange(16, dtype=float).reshape(1, 1, 4, 4)
        out = F.avgpool2d(x, kernel=2)
        assert np.array_equal(out[0, 0], [[2.5, 4.5], [10.5, 12.5]])

    def test_maxpool_with_stride(self):
        x = np.arange(25, dtype=float).reshape(1, 1, 5, 5)
        out = F.maxpool2d(x, kernel=3, stride=2)
        assert out.shape == (1, 1, 2, 2)

    def test_global_avg_pool(self):
        x = np.ones((2, 3, 4, 4))
        out = F.global_avg_pool(x)
        assert out.shape == (2, 3)
        assert np.allclose(out, 1.0)

    def test_global_avg_pool_rejects_non_4d(self):
        with pytest.raises(ValueError):
            F.global_avg_pool(np.zeros((2, 3)))


class TestActivationsAndLoss:
    def test_relu(self):
        assert np.array_equal(F.relu(np.array([-1.0, 2.0])), [0.0, 2.0])

    def test_softmax_sums_to_one(self):
        probs = F.softmax(np.random.default_rng(0).random((5, 10)))
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_softmax_stable_for_large_logits(self):
        probs = F.softmax(np.array([[1000.0, 1000.0]]))
        assert np.allclose(probs, 0.5)

    def test_one_hot(self):
        encoded = F.one_hot(np.array([0, 2]), 3)
        assert np.array_equal(encoded, [[1, 0, 0], [0, 0, 1]])

    def test_one_hot_rejects_bad_labels(self):
        with pytest.raises(ValueError):
            F.one_hot(np.array([3]), 3)

    def test_cross_entropy_of_perfect_prediction_is_small(self):
        logits = np.array([[100.0, 0.0], [0.0, 100.0]])
        assert F.cross_entropy(logits, np.array([0, 1])) < 1e-6

    def test_cross_entropy_of_uniform_prediction(self):
        logits = np.zeros((4, 8))
        assert F.cross_entropy(logits, np.zeros(4, dtype=int)) == pytest.approx(
            np.log(8)
        )
