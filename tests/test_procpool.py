"""Tests for process-based engine workers and the shared-memory transport.

The contract mirrors every other fast path in this repo: hosting an engine in
its own worker process is a pure scheduling/parallelism change, so outputs,
statistics and seeded noise draws stay *bit-identical* to the in-process
:class:`~repro.runtime.NetworkEngine` built from the same spec.
"""

import multiprocessing

import numpy as np
import pytest

from repro.analog.noise import GaussianColumnNoise
from repro.runtime import (
    ExecutorPool,
    NetworkEngine,
    ProcessEngine,
    RemoteEngineError,
    ReplicaPool,
)
from repro.runtime.procpool import _MIN_BLOCK_BYTES
from repro.serve import (
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
    ServerStoppedError,
)
from repro.telemetry import TelemetryCollector
from tests.test_runtime_engine import assert_stats_equal


def reference_engine(model, **kwargs) -> NetworkEngine:
    """An isolated in-process engine for parity comparisons."""
    return NetworkEngine.build(model, pool=ExecutorPool(weight_cache=None), **kwargs)


@pytest.fixture
def process_engine(tiny_mlp_model):
    """A worker-hosted engine for the tiny MLP, closed after the test."""
    engine = ProcessEngine.launch(tiny_mlp_model)
    yield engine
    engine.close()


class TestProcessEngineParity:
    def test_bit_identical_to_in_process(self, tiny_mlp_model, process_engine, rng):
        inputs = np.abs(rng.normal(0, 1, size=(10, 16)))
        assert np.array_equal(
            reference_engine(tiny_mlp_model).run(inputs), process_engine.run(inputs)
        )

    def test_micro_batching_matches(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(10, 16)))
        reference = reference_engine(tiny_mlp_model, micro_batch=3)
        with ProcessEngine.launch(tiny_mlp_model, micro_batch=3) as engine:
            assert np.array_equal(reference.run(inputs), engine.run(inputs))
            # Per-call override crosses the pipe too.
            assert np.array_equal(
                reference.run(inputs, micro_batch=4),
                engine.run(inputs, micro_batch=4),
            )

    def test_return_codes_parity(self, tiny_mlp_model, process_engine, rng):
        inputs = np.abs(rng.normal(0, 1, size=(6, 16)))
        assert np.array_equal(
            reference_engine(tiny_mlp_model).run(inputs, return_codes=True),
            process_engine.run(inputs, return_codes=True),
        )

    def test_seeded_noise_draws_identically(self, tiny_mlp_model, rng):
        # The pickled noise RNG state must reproduce the exact draw
        # sequence across consecutive runs, like the in-process engine.
        inputs = np.abs(rng.normal(0, 1, size=(9, 16)))
        reference = reference_engine(
            tiny_mlp_model, noise=GaussianColumnNoise(level=0.08, seed=5)
        )
        with ProcessEngine.launch(
            tiny_mlp_model, noise=GaussianColumnNoise(level=0.08, seed=5)
        ) as engine:
            for _ in range(2):
                assert np.array_equal(reference.run(inputs), engine.run(inputs))

    def test_conv_model_and_predict(self, tiny_conv_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(5, 3, 8, 8)))
        reference = reference_engine(tiny_conv_model)
        with ProcessEngine.launch(tiny_conv_model) as engine:
            assert np.array_equal(reference.run(inputs), engine.run(inputs))
            assert np.array_equal(reference.predict(inputs), engine.predict(inputs))

    def test_spawn_start_method(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        with ProcessEngine.launch(tiny_mlp_model, start_method="spawn") as engine:
            assert np.array_equal(
                reference_engine(tiny_mlp_model).run(inputs), engine.run(inputs)
            )

    def test_float32_fast_path_parity(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(6, 16)))
        with ProcessEngine.launch(tiny_mlp_model, float32=True) as engine:
            assert np.array_equal(
                reference_engine(tiny_mlp_model).run(inputs), engine.run(inputs)
            )


class TestSharedMemoryTransport:
    def test_blocks_grow_and_shrink_transparently(
        self, tiny_mlp_model, process_engine, rng
    ):
        # Alternate small and oversized batches: the oversized one forces
        # both direction blocks to grow past the minimum size, the next
        # small one rides the grown block -- parity must hold throughout.
        reference = reference_engine(tiny_mlp_model)
        oversized = _MIN_BLOCK_BYTES // (16 * 8) + 7
        for n in (3, oversized, 2):
            inputs = np.abs(rng.normal(0, 1, size=(n, 16)))
            assert np.array_equal(reference.run(inputs), process_engine.run(inputs))

    def test_outputs_are_independent_copies(self, process_engine, rng):
        # Results must be materialised out of the shared block: a later
        # request reuses the block and must not mutate earlier results.
        first_inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        first = process_engine.run(first_inputs)
        snapshot = first.copy()
        process_engine.run(np.abs(rng.normal(0, 1, size=(4, 16))))
        assert np.array_equal(first, snapshot)

    def test_worker_side_timings_reported(self, process_engine, rng):
        inputs = np.abs(rng.normal(0, 1, size=(5, 16)))
        outputs, elapsed, records = process_engine.run_timed(inputs)
        assert outputs.shape[0] == 5
        assert elapsed > 0
        assert records == [(5, elapsed)]
        probed: list[tuple[int, float]] = []
        probe = process_engine.add_run_probe(lambda n, s: probed.append((n, s)))
        process_engine.run(inputs)
        assert len(probed) == 1 and probed[0][0] == 5 and probed[0][1] > 0
        process_engine.remove_run_probe(probe)


class TestWorkerLifecycle:
    def test_worker_errors_propagate_and_worker_survives(
        self, tiny_mlp_model, process_engine, rng
    ):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        expected = reference_engine(tiny_mlp_model).run(inputs)
        with pytest.raises(Exception) as excinfo:
            process_engine.run(np.ones((2, 7)))  # wrong feature count
        assert hasattr(excinfo.value, "remote_traceback")
        # The worker loop keeps serving after a failed request.
        assert np.array_equal(process_engine.run(inputs), expected)

    def test_unpicklable_spec_rejected_at_launch(self, tiny_mlp_model):
        class LambdaNoise:
            @staticmethod
            def apply(positive, negative):
                return positive - negative

            def __reduce__(self):
                raise TypeError("deliberately unpicklable")

        with pytest.raises(ValueError, match="not picklable"):
            ProcessEngine.launch(tiny_mlp_model, noise=LambdaNoise())

    def test_uncalibrated_model_rejected(self, rng):
        from repro.nn.layers import Linear
        from repro.nn.model import QuantizedModel
        from repro.nn.synthetic import synthetic_linear_weights

        model = QuantizedModel(
            "raw",
            [Linear("fc", synthetic_linear_weights(4, 8, rng))],
            input_shape=(8,),
        )
        with pytest.raises(ValueError, match="calibrated"):
            ProcessEngine.launch(model)

    def test_close_is_idempotent_and_terminal(self, tiny_mlp_model):
        engine = ProcessEngine.launch(tiny_mlp_model)
        pid = engine.worker.pid
        assert pid is not None and not engine.closed
        engine.close()
        engine.close()
        assert engine.closed and engine.worker.pid is None
        assert not multiprocessing.active_children()
        with pytest.raises(RuntimeError, match="closed"):
            engine.run(np.zeros((1, 16)))

    def test_dead_worker_raises_instead_of_hanging(self, tiny_mlp_model):
        engine = ProcessEngine.launch(tiny_mlp_model)
        try:
            engine.worker._process.terminate()
            engine.worker._process.join(timeout=10)
            with pytest.raises(RemoteEngineError, match="died"):
                engine.run(np.zeros((1, 16)))
        finally:
            engine.close()

    def test_statistics_roundtrip(self, tiny_mlp_model, process_engine, rng):
        inputs = np.abs(rng.normal(0, 1, size=(7, 16)))
        reference = reference_engine(tiny_mlp_model)
        reference.run(inputs)
        process_engine.run(inputs)
        remote = process_engine.layer_statistics()
        for name, stats in reference.layer_statistics().items():
            assert_stats_equal(stats, remote[name])
        assert_stats_equal(
            reference.network_statistics(), process_engine.network_statistics()
        )
        process_engine.reset_statistics()
        assert process_engine.network_statistics().n_inputs == 0


class TestRegistryAndServerIntegration:
    def test_register_process_backend(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        with ModelRegistry() as registry:
            engine = registry.register("mlp", tiny_mlp_model, backend="process")
            assert isinstance(engine, ReplicaPool)
            assert engine.replicas == 1
            assert registry.engine("mlp") is engine
            assert registry.model("mlp") is tiny_mlp_model
            assert np.array_equal(
                reference_engine(tiny_mlp_model, float32=True).run(inputs),
                engine.run(inputs),
            )

    def test_unregister_shuts_worker_down(self, tiny_mlp_model):
        registry = ModelRegistry()
        engine = registry.register("mlp", tiny_mlp_model, backend="process")
        registry.unregister("mlp")
        assert engine.closed
        assert not multiprocessing.active_children()

    def test_invalid_backend_combinations_rejected(self, tiny_mlp_model):
        registry = ModelRegistry()
        with pytest.raises(ValueError, match="backend"):
            registry.register("a", tiny_mlp_model, backend="rocket")
        with pytest.raises(ValueError, match="shard"):
            registry.register("b", tiny_mlp_model, backend="process", sharded=True)
        with pytest.raises(ValueError, match="shard"):
            registry.register("c", tiny_mlp_model, backend="process", n_stages=2)
        assert len(registry) == 0

    def test_server_over_process_backend_bit_identical(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(10, 16)))
        direct = reference_engine(tiny_mlp_model, float32=True).run(inputs)
        telemetry = TelemetryCollector()
        with ModelRegistry() as registry:
            registry.register("mlp", tiny_mlp_model, backend="process")
            server = InferenceServer(
                registry,
                BatchingPolicy(max_batch_size=4, max_delay_s=10.0),
                telemetry=telemetry,
            )
            futures = [server.submit("mlp", inputs[i : i + 1]) for i in range(10)]
            with server:
                pass
            results = [f.result(timeout=30) for f in futures]
            assert np.array_equal(np.concatenate(results, axis=0), direct)
            stats = server.statistics()
            assert stats.requests_completed == 10 and stats.batches_executed == 3
            # Dispatch to a worker-owned engine takes no executor locks.
            assert server._executor_locks == {}
            # Worker-side engine-run records merged into the collector: one
            # per coalesced batch, with non-zero worker-measured wall time.
            aggregate = telemetry.aggregate("mlp")
            assert aggregate.engine_runs == 3
            assert aggregate.engine_run_samples == 10
            assert aggregate.engine_run_s > 0

    def test_mixed_backends_share_one_server(
        self, tiny_mlp_model, tiny_conv_model, rng
    ):
        mlp_in = np.abs(rng.normal(0, 1, size=(4, 16)))
        conv_in = np.abs(rng.normal(0, 1, size=(3, 3, 8, 8)))
        direct_mlp = reference_engine(tiny_mlp_model, float32=True).run(mlp_in)
        direct_conv = reference_engine(tiny_conv_model, float32=True).run(conv_in)
        with ModelRegistry() as registry:
            registry.register("mlp", tiny_mlp_model, backend="process")
            registry.register("conv", tiny_conv_model)  # thread backend
            with InferenceServer(registry) as server:
                mlp_future = server.submit("mlp", mlp_in)
                conv_future = server.submit("conv", conv_in)
                assert np.array_equal(mlp_future.result(timeout=30), direct_mlp)
                assert np.array_equal(conv_future.result(timeout=30), direct_conv)

    def test_engine_failure_over_process_backend(self, tiny_mlp_model):
        with ModelRegistry() as registry:
            registry.register("mlp", tiny_mlp_model, backend="process")
            server = InferenceServer(
                registry, BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
            )
            good = server.submit("mlp", np.zeros((1, 16)))
            with server:
                pass
            good.result(timeout=30)
            with pytest.raises(ServerStoppedError):
                server.submit("mlp", np.zeros((1, 16)))
