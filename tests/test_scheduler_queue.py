"""Edge-case tests for the dynamic micro-batching request queue.

Covers the scheduler behaviours the serving tests exercise only implicitly:
oversized single requests, a zero latency budget (immediate dispatch),
interleaved multi-model fairness, and the opt-in batch-size-aware adaptive
delay budget -- plus property-based randomized streams (hypothesis) pinning
the dispatch invariants: nothing lost or duplicated, per-model FIFO
preserved, priority-then-EDF ordering, and the starvation aging bound.
"""

import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve.scheduler import (
    BatchingPolicy,
    InferenceFuture,
    InferenceRequest,
    RequestQueue,
)


def make_request(
    name: str,
    samples: int = 1,
    enqueued_at: float | None = None,
    priority: int = 0,
    deadline_s: float | None = None,
):
    return InferenceRequest(
        model_name=name,
        inputs=np.zeros((samples, 3)),
        future=InferenceFuture(),
        enqueued_at=time.monotonic() if enqueued_at is None else enqueued_at,
        priority=priority,
        deadline_s=deadline_s,
    )


class TestBatchingPolicyValidation:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError, match="max_batch_size"):
            BatchingPolicy(max_batch_size=0)
        with pytest.raises(ValueError, match="max_delay_s"):
            BatchingPolicy(max_delay_s=-0.1)
        with pytest.raises(ValueError, match="starvation_limit_s"):
            BatchingPolicy(starvation_limit_s=0.0)

    def test_effective_delay_constant_without_adaptive(self):
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=0.4)
        for queued in (0, 4, 8, 100):
            assert policy.effective_delay_s(queued) == 0.4

    def test_effective_delay_shrinks_with_fill(self):
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=0.4, adaptive_delay=True)
        assert policy.effective_delay_s(0) == pytest.approx(0.4)
        assert policy.effective_delay_s(4) == pytest.approx(0.2)
        assert policy.effective_delay_s(6) == pytest.approx(0.1)
        assert policy.effective_delay_s(8) == 0.0
        assert policy.effective_delay_s(100) == 0.0  # clamped, never negative


class TestRequestQueueEdgeCases:
    def test_oversized_single_request_forms_its_own_batch(self):
        queue = RequestQueue()
        queue.submit(make_request("m", samples=50))
        queue.submit(make_request("m", samples=2))
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        queue.close()
        batch = queue.next_batch(policy)
        assert len(batch) == 1
        assert batch[0].n_samples == 50  # runs alone, never splits
        follow_up = queue.next_batch(policy)
        assert [r.n_samples for r in follow_up] == [2]

    def test_oversized_request_never_coalesces_a_second_request(self):
        queue = RequestQueue()
        queue.submit(make_request("m", samples=8))
        queue.submit(make_request("m", samples=1))
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        queue.close()
        # The first request exactly fills the batch: the 1-sample request
        # must wait for the next batch rather than overflow this one.
        assert [r.n_samples for r in queue.next_batch(policy)] == [8]
        assert [r.n_samples for r in queue.next_batch(policy)] == [1]

    def test_zero_delay_dispatches_immediately(self):
        queue = RequestQueue()
        queue.submit(make_request("m"))
        policy = BatchingPolicy(max_batch_size=64, max_delay_s=0.0)
        start = time.monotonic()
        batch = queue.next_batch(policy)  # queue still open, batch not full
        elapsed = time.monotonic() - start
        assert len(batch) == 1
        assert elapsed < 1.0  # no waiting on the (zero) latency budget

    def test_interleaved_multi_model_fairness(self):
        queue = RequestQueue()
        base = time.monotonic()
        # Interleaved arrivals: a0 b0 a1 b1 a2 b2 ...
        for i in range(3):
            queue.submit(make_request("a", enqueued_at=base + 2 * i))
            queue.submit(make_request("b", enqueued_at=base + 2 * i + 1))
        queue.close()
        policy = BatchingPolicy(max_batch_size=64, max_delay_s=10.0)
        first = queue.next_batch(policy)
        second = queue.next_batch(policy)
        assert queue.next_batch(policy) is None
        # Oldest head first (a), whole per-model queue coalesces, then b --
        # a steady stream on one model cannot starve the other.
        assert [r.model_name for r in first] == ["a", "a", "a"]
        assert [r.model_name for r in second] == ["b", "b", "b"]

    def test_continuous_stream_does_not_starve_other_model(self):
        queue = RequestQueue()
        base = time.monotonic()
        queue.submit(make_request("quiet", enqueued_at=base))
        for i in range(10):
            queue.submit(make_request("busy", enqueued_at=base + 0.001 * (i + 1)))
        queue.close()
        policy = BatchingPolicy(max_batch_size=4, max_delay_s=10.0)
        assert queue.next_batch(policy)[0].model_name == "quiet"

    def test_submit_after_close_raises(self):
        queue = RequestQueue()
        queue.close()
        with pytest.raises(RuntimeError, match="closed"):
            queue.submit(make_request("m"))
        policy = BatchingPolicy()
        assert queue.next_batch(policy) is None


class TestStarvationAging:
    """The aging rule: a saturated high-priority stream cannot starve
    best-effort work forever (``BatchingPolicy.starvation_limit_s``).

    A model whose head request has waited longer than the starvation limit
    is promoted into the top pending priority class, where its long-exhausted
    delay budget (the slack of a deadline-free request) undercuts any stream
    of fresh arrivals -- so a deadline-free best-effort request dispatches
    even while a high-priority model stays permanently full.
    """

    def fill_busy(self, queue, base, priority=5, count=8):
        for i in range(count):
            queue.submit(
                make_request(
                    "busy",
                    enqueued_at=base + 0.001 * i,
                    priority=priority,
                    deadline_s=base + 60.0,
                )
            )

    def test_fresh_best_effort_yields_to_priority(self):
        queue = RequestQueue()
        now = time.monotonic()
        queue.submit(make_request("quiet", enqueued_at=now - 0.1))
        self.fill_busy(queue, now)
        policy = BatchingPolicy(
            max_batch_size=4, max_delay_s=0.0, starvation_limit_s=10.0
        )
        # Under the limit, the priority class wins as before.
        assert queue.next_batch(policy)[0].model_name == "busy"

    def test_starved_best_effort_jumps_priority_classes(self):
        queue = RequestQueue()
        now = time.monotonic()
        queue.submit(make_request("quiet", enqueued_at=now - 1.0))
        self.fill_busy(queue, now)
        policy = BatchingPolicy(
            max_batch_size=4, max_delay_s=0.0, starvation_limit_s=0.5
        )
        # Past the limit, the aging rule promotes the best-effort model.
        assert queue.next_batch(policy)[0].model_name == "quiet"

    def test_always_full_stream_starves_only_up_to_the_limit(self):
        queue = RequestQueue()
        base = time.monotonic()
        limit = 0.2
        policy = BatchingPolicy(
            max_batch_size=4, max_delay_s=0.0, starvation_limit_s=limit
        )
        queue.submit(make_request("quiet", enqueued_at=base))
        self.fill_busy(queue, base, count=4)
        dispatched = []
        deadline = time.monotonic() + 5.0
        while time.monotonic() < deadline:
            batch = queue.next_batch(policy)
            dispatched.append(batch[0].model_name)
            if batch[0].model_name == "quiet":
                break
            # Keep the high-priority model always full, as fast as it drains.
            self.fill_busy(queue, time.monotonic(), count=len(batch))
        waited = time.monotonic() - base
        assert "quiet" in dispatched, "best-effort request starved"
        # The wait is bounded by the starvation limit (plus scheduling time,
        # bounded loosely for slow CI machines).
        assert waited < limit + 3.0


#: One random request: (model, samples, priority, deadline offset or None).
request_specs = st.lists(
    st.tuples(
        st.sampled_from(["a", "b", "c"]),
        st.integers(min_value=1, max_value=6),
        st.integers(min_value=0, max_value=3),
        st.one_of(st.none(), st.floats(min_value=0.001, max_value=60.0)),
    ),
    min_size=1,
    max_size=48,
)


class TestDispatchProperties:
    """Property-based invariants of ``RequestQueue`` over random streams.

    Every test drains a closed queue (drain mode never blocks), so the
    randomized schedules stay deterministic apart from ``time.monotonic``
    drift -- which the invariants are chosen to be insensitive to.
    """

    @given(
        stream=request_specs,
        max_batch=st.integers(min_value=1, max_value=12),
        slo_mode=st.booleans(),
    )
    @settings(max_examples=40, deadline=None)
    def test_drain_conserves_requests_and_per_model_fifo(
        self, stream, max_batch, slo_mode
    ):
        """No request lost, duplicated, reordered within its model, or
        batched beyond the size target (oversized singletons excepted)."""
        queue = RequestQueue(slo_mode=slo_mode)
        base = time.monotonic() - 120.0
        for i, (model, samples, priority, offset) in enumerate(stream):
            queue.submit(
                InferenceRequest(
                    model_name=model,
                    inputs=np.zeros((samples, 3)),
                    future=InferenceFuture(),
                    enqueued_at=base + 1e-6 * i,
                    priority=priority,
                    deadline_s=None if offset is None else base + offset,
                    request_id=i,
                )
            )
        queue.close()
        policy = BatchingPolicy(max_batch_size=max_batch, max_delay_s=0.0)
        batches = []
        while (batch := queue.next_batch(policy)) is not None:
            batches.append(batch)
        dispatched = [request for batch in batches for request in batch]
        assert sorted(r.request_id for r in dispatched) == list(range(len(stream)))
        per_model: dict[str, list[int]] = {}
        for batch in batches:
            assert len({r.model_name for r in batch}) == 1  # no mixed batches
            assert sum(r.n_samples for r in batch) <= max_batch or len(batch) == 1
            per_model.setdefault(batch[0].model_name, []).extend(
                r.request_id for r in batch
            )
        for ids in per_model.values():
            assert ids == sorted(ids), "per-model FIFO violated"

    @given(
        specs=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=3),
                st.floats(min_value=0.5, max_value=120.0),
            ),
            min_size=2,
            max_size=8,
            unique_by=lambda spec: spec[1],
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_priority_classes_then_earliest_deadline(self, specs):
        """One deadline request per model: dispatch order is exactly
        (highest priority class, earliest deadline)."""
        queue = RequestQueue()
        now = time.monotonic()
        for i, (priority, offset) in enumerate(specs):
            queue.submit(
                InferenceRequest(
                    model_name=f"m{i}",
                    inputs=np.zeros((1, 3)),
                    future=InferenceFuture(),
                    enqueued_at=now,
                    priority=priority,
                    deadline_s=now + offset,
                    request_id=i,
                )
            )
        queue.close()
        # A huge starvation limit keeps the aging rule out of this property.
        policy = BatchingPolicy(
            max_batch_size=4, max_delay_s=10.0, starvation_limit_s=1000.0
        )
        order = []
        while (batch := queue.next_batch(policy)) is not None:
            assert len(batch) == 1  # distinct models never co-batch
            order.append(batch[0].request_id)
        # Rank by the *absolute* deadline the queue actually sees: offsets
        # unique in isolation can collapse to the same float once added to a
        # large monotonic ``now`` (sub-ULP difference), and the queue breaks
        # such ties by submission order -- which the stable sort preserves.
        ranked = sorted(
            enumerate(specs), key=lambda item: (-item[1][0], now + item[1][1])
        )
        assert order == [index for index, _spec in ranked]

    @given(
        busy_priority=st.integers(min_value=1, max_value=5),
        busy_count=st.integers(min_value=1, max_value=10),
        busy_deadline=st.floats(min_value=0.001, max_value=60.0),
        extra_age=st.floats(min_value=0.001, max_value=10.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_starvation_aging_bounds_any_priority_stream(
        self, busy_priority, busy_count, busy_deadline, extra_age
    ):
        """A best-effort head older than the limit beats *every* fresh
        high-priority deadline stream on the next dispatch decision."""
        limit = 0.25
        queue = RequestQueue()
        now = time.monotonic()
        queue.submit(make_request("quiet", enqueued_at=now - limit - extra_age))
        for i in range(busy_count):
            queue.submit(
                make_request(
                    "busy",
                    enqueued_at=now,
                    priority=busy_priority,
                    deadline_s=now + busy_deadline,
                )
            )
        policy = BatchingPolicy(
            max_batch_size=4, max_delay_s=0.0, starvation_limit_s=limit
        )
        batch = queue.next_batch(policy)
        assert batch[0].model_name == "quiet"


class TestAdaptiveDelay:
    def test_near_full_queue_dispatches_early(self):
        queue = RequestQueue()
        queue.submit(make_request("m", samples=3))
        policy = BatchingPolicy(max_batch_size=4, max_delay_s=2.0, adaptive_delay=True)
        start = time.monotonic()
        batch = queue.next_batch(policy)  # 3/4 full: budget shrinks to 0.5s
        elapsed = time.monotonic() - start
        assert [r.n_samples for r in batch] == [3]
        assert elapsed < 1.5  # well under the non-adaptive 2s budget

    def test_non_adaptive_waits_longer_than_adaptive_budget(self):
        queue = RequestQueue()
        queue.submit(make_request("m", samples=3))
        policy = BatchingPolicy(max_batch_size=4, max_delay_s=0.4)
        start = time.monotonic()
        queue.next_batch(policy)
        elapsed = time.monotonic() - start
        assert elapsed >= 0.3  # the full (non-adaptive) budget was honoured
