"""Tests for :mod:`repro.telemetry`: cost tables, collector, SLO serving.

The contract under test:

* :class:`CostModel` totals match :class:`~repro.hw.energy.EnergyModel` and
  the Fig. 12 harness to 1e-6 relative (they are the same analytical
  pipeline, precomputed);
* :class:`TelemetryCollector` is thread-safe, keeps exact aggregates, and
  exports JSON / Prometheus text;
* serving with telemetry + SLO scheduling enabled stays bit-identical on
  outputs -- metering and reordering never touch the arithmetic.
"""

import json
import re
import threading
import time
from types import SimpleNamespace

import numpy as np
import pytest

from repro.experiments.fig12_efficiency import run_fig12
from repro.hw import RAELLA_ARCH
from repro.hw.energy import EnergyModel
from repro.nn.zoo import model_shapes
from repro.runtime import NetworkEngine
from repro.serve import BatchingPolicy, InferenceServer, ModelRegistry, OverloadState
from repro.serve.scheduler import InferenceFuture, InferenceRequest, RequestQueue
from repro.telemetry import (
    PROMETHEUS_CONTENT_TYPE,
    CostModel,
    LatencyHistogram,
    RequestTrace,
    TelemetryCollector,
    shapes_from_model,
)

ZOO_CROSS_CHECK_MODELS = ("resnet18", "mobilenetv2")


def make_trace(
    request_id=0,
    model_name="m",
    n_samples=2,
    priority=0,
    deadline_s=None,
    enqueued_at=10.0,
    dispatched_at=10.5,
    completed_at=11.0,
    batch_size=4,
    engine_time_s=0.25,
    modeled_energy_pj=100.0,
    modeled_latency_us=3.0,
    modeled_energy_components_pj=None,
) -> RequestTrace:
    return RequestTrace(
        request_id=request_id,
        model_name=model_name,
        n_samples=n_samples,
        priority=priority,
        deadline_s=deadline_s,
        enqueued_at=enqueued_at,
        dispatched_at=dispatched_at,
        completed_at=completed_at,
        batch_size=batch_size,
        engine_time_s=engine_time_s,
        modeled_energy_pj=modeled_energy_pj,
        modeled_latency_us=modeled_latency_us,
        modeled_energy_components_pj=modeled_energy_components_pj,
    )


class TestCostModel:
    @pytest.mark.parametrize("model_name", ZOO_CROSS_CHECK_MODELS)
    def test_energy_matches_energy_model(self, model_name):
        shapes = model_shapes(model_name)
        cost = CostModel.from_shapes(shapes, RAELLA_ARCH)
        reference = EnergyModel(RAELLA_ARCH).model_energy(shapes).total_pj
        assert cost.energy_per_sample_pj == pytest.approx(reference, rel=1e-6)
        assert cost.validate_against_energy_model(rel_tol=1e-6) <= 1e-6

    def test_matches_fig12_harness(self):
        fig12 = run_fig12(model_names=ZOO_CROSS_CHECK_MODELS)
        for row in fig12.rows:
            cost = CostModel.from_shapes(model_shapes(row.model_name), RAELLA_ARCH)
            assert cost.energy_per_sample_uj == pytest.approx(
                row.raella_energy_uj, rel=1e-6
            )
            assert cost.throughput_samples_per_s == pytest.approx(
                row.raella_throughput, rel=1e-6
            )

    def test_breakdown_matches_energy_model_components(self):
        shapes = model_shapes("resnet18")
        cost = CostModel.from_shapes(shapes, RAELLA_ARCH)
        reference = EnergyModel(RAELLA_ARCH).model_energy(shapes)
        breakdown = cost.energy_breakdown()
        for key, value in reference.components_pj.items():
            assert breakdown.components_pj[key] == pytest.approx(value, rel=1e-6)

    def test_from_model_builds_per_layer_table(self, tiny_conv_model):
        cost = CostModel.from_model(tiny_conv_model, RAELLA_ARCH)
        expected = [layer.name for layer in tiny_conv_model.matmul_layers()]
        assert [entry.name for entry in cost.layer_costs] == expected
        assert all(entry.energy_pj > 0 for entry in cost.layer_costs)
        assert all(entry.latency_us > 0 for entry in cost.layer_costs)
        assert cost.energy_per_sample_pj == pytest.approx(
            sum(entry.energy_pj for entry in cost.layer_costs)
        )
        for name in expected:
            assert cost.layer_cost(name).name == name
        with pytest.raises(KeyError, match="no crossbar layer"):
            cost.layer_cost("nonexistent")

    def test_shapes_from_model_dimensions(self, tiny_conv_model):
        shapes = shapes_from_model(tiny_conv_model)
        by_name = {layer.name: layer for layer in shapes.layers}
        for layer in tiny_conv_model.matmul_layers():
            shape = by_name[layer.name]
            assert shape.reduction_dim == layer.reduction_dim
            assert shape.n_filters == layer.out_features
        # Same-padding convs: modeled MACs equal the model's exact MACs.
        assert shapes.total_macs == tiny_conv_model.total_macs()

    def test_shapes_from_model_rejects_unmodellable_convs(self, rng):
        from repro.nn.layers import Conv2d, GlobalAvgPool, Linear
        from repro.nn.model import QuantizedModel
        from repro.nn.synthetic import synthetic_conv_weights
        from repro.nn.synthetic import synthetic_linear_weights

        # padding=0 breaks the same-padding assumption the analytical
        # LayerShape encodes: the tables would silently overcount output
        # positions, so conversion must refuse.
        conv = Conv2d("valid_conv", synthetic_conv_weights(4, 3, 3, rng), padding=0)
        head = Linear("fc", synthetic_linear_weights(5, 4, rng))
        model = QuantizedModel(
            "valid_pad", [conv, GlobalAvgPool(), head], input_shape=(3, 8, 8)
        )
        model.calibrate(np.abs(rng.normal(0, 1, size=(4, 3, 8, 8))))
        with pytest.raises(ValueError, match="same-padding"):
            shapes_from_model(model)

        # Even kernels satisfy padding == kernel // 2 yet still change the
        # output size; the guard compares real output dims, so they fail too.
        even = Conv2d("even_conv", synthetic_conv_weights(4, 3, 2, rng), padding=1)
        even_model = QuantizedModel(
            "even_pad",
            [even, GlobalAvgPool(), Linear("fc2", synthetic_linear_weights(5, 4, rng))],
            input_shape=(3, 8, 8),
        )
        even_model.calibrate(np.abs(rng.normal(0, 1, size=(4, 3, 8, 8))))
        with pytest.raises(ValueError, match="same-padding"):
            shapes_from_model(even_model)

        square = Conv2d("conv", synthetic_conv_weights(4, 3, 3, rng), padding=1)
        rect = QuantizedModel(
            "rect",
            [
                square,
                GlobalAvgPool(),
                Linear("fc", synthetic_linear_weights(5, 4, rng)),
            ],
            input_shape=(3, 8, 12),
        )
        rect.calibrate(np.abs(rng.normal(0, 1, size=(4, 3, 8, 12))))
        with pytest.raises(ValueError, match="square inputs"):
            shapes_from_model(rect)

    def test_attribution_scales_linearly(self, tiny_mlp_model):
        cost = CostModel.from_model(tiny_mlp_model, RAELLA_ARCH)
        assert cost.energy_pj(7) == pytest.approx(7 * cost.energy_per_sample_pj)
        assert cost.batch_latency_us(1) == pytest.approx(cost.single_sample_latency_us)
        assert cost.batch_latency_us(5) == pytest.approx(
            cost.single_sample_latency_us + 4 * cost.steady_state_latency_us
        )
        assert cost.batch_latency_us(0) == 0.0
        assert cost.batch_latency_s(5) == pytest.approx(cost.batch_latency_us(5) / 1e6)

    def test_summary_lists_layers(self, tiny_mlp_model):
        cost = CostModel.from_model(tiny_mlp_model, RAELLA_ARCH)
        summary = cost.summary()
        for layer in tiny_mlp_model.matmul_layers():
            assert layer.name in summary


class TestTelemetryCollector:
    def test_aggregates_one_model(self):
        collector = TelemetryCollector()
        collector.record(make_trace(request_id=0, n_samples=2, batch_size=4))
        collector.record(
            make_trace(
                request_id=1,
                n_samples=2,
                batch_size=4,
                deadline_s=10.9,  # completed at 11.0 -> missed
            )
        )
        aggregate = collector.aggregate("m")
        assert aggregate.requests == 2
        assert aggregate.samples == 4
        assert aggregate.queue_wait_s == pytest.approx(1.0)
        assert aggregate.mean_queue_wait_s == pytest.approx(0.5)
        # Each request rode a 4-sample batch with 2 samples: half the time.
        assert aggregate.engine_share_s == pytest.approx(0.25)
        assert aggregate.modeled_energy_pj == pytest.approx(200.0)
        assert aggregate.deadline_requests == 1
        assert aggregate.deadline_misses == 1
        assert aggregate.deadline_miss_rate == 1.0
        assert aggregate.max_batch_size == 4

    def test_trace_derived_fields(self):
        trace = make_trace(deadline_s=12.0)
        assert trace.queue_wait_s == pytest.approx(0.5)
        assert trace.latency_s == pytest.approx(1.0)
        assert trace.engine_share_s == pytest.approx(0.125)
        assert not trace.deadline_missed
        assert make_trace(deadline_s=10.9).deadline_missed

    def test_rolling_window_keeps_cumulative_aggregates(self):
        collector = TelemetryCollector(max_traces=4)
        for i in range(10):
            collector.record(make_trace(request_id=i))
        assert len(collector.traces()) == 4
        assert collector.traces()[0].request_id == 6
        assert collector.aggregate("m").requests == 10

    def test_thread_safety(self):
        collector = TelemetryCollector(max_traces=10_000)
        n_threads, per_thread = 8, 200

        def worker(thread_id: int) -> None:
            for i in range(per_thread):
                collector.record(make_trace(request_id=thread_id * per_thread + i))
                collector.record_engine_run("m", 2, 0.001)

        threads = [threading.Thread(target=worker, args=(t,)) for t in range(n_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        aggregate = collector.aggregate("m")
        assert aggregate.requests == n_threads * per_thread
        assert aggregate.engine_runs == n_threads * per_thread
        assert aggregate.engine_run_samples == 2 * n_threads * per_thread

    def test_export_json_roundtrip(self):
        collector = TelemetryCollector()
        collector.record(make_trace(model_name="a"))
        collector.record(make_trace(model_name="b", deadline_s=10.9))
        payload = json.loads(collector.export_json())
        assert set(payload["models"]) == {"a", "b"}
        assert payload["models"]["a"]["requests"] == 1
        assert payload["models"]["b"]["deadline_misses"] == 1
        assert len(payload["traces"]) == 2
        slim = json.loads(collector.export_json(include_traces=False))
        assert "traces" not in slim

    def test_prometheus_text_format(self):
        collector = TelemetryCollector()
        collector.record(make_trace(model_name="a"))
        collector.record_engine_run("a", 4, 0.002)
        text = collector.to_prometheus()
        assert "# HELP repro_requests_total" in text
        assert "# TYPE repro_requests_total counter" in text
        assert 'repro_requests_total{model="a"} 1' in text
        assert 'repro_samples_total{model="a"} 2' in text
        assert 'repro_engine_runs_total{model="a"} 1' in text
        assert text.endswith("\n")

    def test_prometheus_escapes_label_values(self):
        collector = TelemetryCollector()
        collector.record(make_trace(model_name='weird"name\\with\nstuff'))
        text = collector.to_prometheus()
        assert 'model="weird\\"name\\\\with\\nstuff"' in text
        assert "\n{" not in text  # no raw newline leaked into a label

    def test_engine_probe(self, tiny_mlp_model, rng):
        collector = TelemetryCollector()
        engine = NetworkEngine.build(tiny_mlp_model)
        probe = engine.add_run_probe(collector.engine_probe("tiny"))
        inputs = np.abs(rng.normal(0, 1, size=(5, 16)))
        engine.run(inputs)
        aggregate = collector.aggregate("tiny")
        assert aggregate.engine_runs == 1
        assert aggregate.engine_run_samples == 5
        assert aggregate.engine_run_s > 0
        engine.remove_run_probe(probe)
        engine.run(inputs)
        assert collector.aggregate("tiny").engine_runs == 1

    def test_predicted_latency_calibrates_to_wall_time(self, tiny_mlp_model):
        collector = TelemetryCollector()
        assert collector.predicted_batch_latency_s("tiny", 4) is None
        cost = CostModel.from_model(tiny_mlp_model, RAELLA_ARCH)
        collector.attach_cost_model("tiny", cost)
        modeled = collector.predicted_batch_latency_s("tiny", 4)
        assert modeled == pytest.approx(cost.batch_latency_s(4))
        # Observe a wall time 100x the modeled latency: the prediction must
        # move toward (and with repetition converge on) the observed scale.
        observed = cost.batch_latency_s(4) * 100.0
        for _ in range(50):
            collector.record_engine_run("tiny", 4, observed)
        calibrated = collector.predicted_batch_latency_s("tiny", 4)
        assert calibrated == pytest.approx(observed, rel=0.05)


# A metric sample line: name, optional {labels} block, a value.  The labels
# block is re-parsed character by character (values may contain commas and
# escaped quotes, so a regex cannot split the pairs).
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{(?P<labels>.*)\})? (?P<value>\S+)$"
)
_LABEL_NAME_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="')
_UNESCAPE = {"\\": "\\", '"': '"', "n": "\n"}

# A model name using every character the exposition format must escape
# (backslash, double quote, newline) plus a comma, which is legal *inside*
# a label value but separates label pairs -- the parser must not split on it.
NASTY_MODEL = 'mlp"v2\\prod\nshard,1'


def parse_labels(raw: str) -> dict[str, str]:
    """Parse (and validate) one ``name="value",...`` label block."""
    labels: dict[str, str] = {}
    pos = 0
    while pos < len(raw):
        match = _LABEL_NAME_RE.match(raw, pos)
        assert match is not None, f"bad label name at {raw[pos:]!r}"
        name = match.group(1)
        assert name not in labels, f"duplicate label {name!r}"
        pos = match.end()
        chars: list[str] = []
        while True:
            assert pos < len(raw), f"unterminated label value in {raw!r}"
            char = raw[pos]
            if char == "\\":
                escape = raw[pos + 1 : pos + 2]
                assert escape in _UNESCAPE, f"bad escape \\{escape} in {raw!r}"
                chars.append(_UNESCAPE[escape])
                pos += 2
            elif char == '"':
                pos += 1
                break
            else:
                assert char != "\n", "raw newline inside a label value"
                chars.append(char)
                pos += 1
        labels[name] = "".join(chars)
        if pos < len(raw):
            assert raw[pos] == ",", f"expected ',' between labels in {raw!r}"
            pos += 1
    return labels


class TestPrometheusConformance:
    """Line-by-line exposition-format (0.0.4) conformance of the export.

    The gateway's ``/metrics`` endpoint hands this text to a real Prometheus
    scraper, so every line must parse: ``# HELP``/``# TYPE`` exactly once per
    metric and before its samples, samples contiguous per metric, label
    values escaped, counter names ``_total``-suffixed, float-parseable
    values.  The collector is populated so every metric family emits at
    least one sample, including the escaping-hostile model name above.
    """

    @pytest.fixture
    def rich_collector(self) -> TelemetryCollector:
        collector = TelemetryCollector()
        components = {"dac": 40.0, "adc": 35.0, "crossbar": 20.0, "digital": 5.0}
        collector.record(
            make_trace(model_name="plain", modeled_energy_components_pj=components)
        )
        collector.record(
            make_trace(
                request_id=1,
                model_name=NASTY_MODEL,
                deadline_s=0.1,
                completed_at=10.6,
            )
        )
        collector.record_engine_run("plain", 4, 0.25, replica="0")
        collector.record_engine_run("plain", 2, 0.125, replica="1")
        collector.record_engine_run(NASTY_MODEL, 2, 0.1)
        collector.record_pool_health("plain", healthy=2, replicas=3, restarts=1)
        collector.record_admission(
            SimpleNamespace(
                model_name=NASTY_MODEL,
                status="shed",
                overload_state=OverloadState.SHED_BEST_EFFORT,
            )
        )
        return collector

    @staticmethod
    def _family_of(metric: str, types: dict[str, str]) -> str:
        """Map one sample name onto its declared metric family.

        Histogram samples append ``_bucket``/``_sum``/``_count`` to the
        family name; counter and gauge samples use the family name verbatim.
        """
        for suffix in ("_bucket", "_sum", "_count"):
            if metric.endswith(suffix):
                family = metric[: -len(suffix)]
                if types.get(family) == "histogram":
                    return family
        return metric

    def _parse(self, text: str):
        """Parse the full export, asserting the line grammar as it goes.

        Returns ``(samples, types)``: every sample as a
        ``(metric, labels, float_value)`` tuple plus each metric's declared
        type.  Histogram families declare ``TYPE <family> histogram`` and
        emit only ``_bucket``/``_sum``/``_count`` samples; ``_bucket`` lines
        must carry an ``le`` label.
        """
        assert text.endswith("\n"), "exposition text must end with a newline"
        samples = []
        types: dict[str, str] = {}
        helps: dict[str, str] = {}
        sampled: set[str] = set()
        current: str | None = None
        for line in text[:-1].split("\n"):
            assert line, "blank line in exposition text"
            if line.startswith("# HELP "):
                metric, _, help_text = line[len("# HELP ") :].partition(" ")
                assert metric not in helps, f"duplicate HELP for {metric}"
                assert help_text, f"empty HELP text for {metric}"
                helps[metric] = help_text
                continue
            if line.startswith("# TYPE "):
                metric, _, kind = line[len("# TYPE ") :].partition(" ")
                assert metric not in types, f"duplicate TYPE for {metric}"
                assert metric not in sampled, f"TYPE after samples for {metric}"
                assert kind in ("counter", "gauge", "histogram"), f"bad type {kind!r}"
                types[metric] = kind
                continue
            assert not line.startswith("#"), f"unparseable comment: {line!r}"
            match = _SAMPLE_RE.match(line)
            assert match is not None, f"unparseable sample line: {line!r}"
            metric = match.group("name")
            family = self._family_of(metric, types)
            assert family in types, f"sample before TYPE for {metric}"
            assert family in helps, f"sample without HELP for {metric}"
            raw = match.group("labels")
            labels = {} if raw is None else parse_labels(raw)
            if types[family] == "histogram":
                assert metric != family, f"bare histogram sample: {metric}"
                if metric == f"{family}_bucket":
                    assert "le" in labels, f"bucket sample without le: {line!r}"
            if family != current:
                assert family not in sampled, f"samples of {family} not contiguous"
                sampled.add(family)
                current = family
            samples.append((metric, labels, float(match.group("value"))))
        return samples, types

    def test_every_line_parses_and_groups_are_contiguous(self, rich_collector):
        samples, types = self._parse(rich_collector.to_prometheus())
        assert samples and types
        seen = set()
        for metric, labels, _value in samples:
            key = (metric, tuple(sorted(labels.items())))
            assert key not in seen, f"duplicate sample {key}"
            seen.add(key)

    def test_counter_names_end_in_total(self, rich_collector):
        _samples, types = self._parse(rich_collector.to_prometheus())
        for metric, kind in types.items():
            if kind == "counter":
                assert metric.endswith("_total"), metric

    def test_label_escaping_round_trips(self, rich_collector):
        samples, _types = self._parse(rich_collector.to_prometheus())
        models = {labels["model"] for _m, labels, _v in samples if "model" in labels}
        assert NASTY_MODEL in models
        assert "plain" in models

    def test_every_family_emits_expected_samples(self, rich_collector):
        samples, types = self._parse(rich_collector.to_prometheus())
        by_metric: dict[str, list] = {}
        for metric, labels, value in samples:
            by_metric.setdefault(metric, []).append((labels, value))
        # Every declared family emits at least one sample for this corpus
        # (histogram families emit under their _bucket/_sum/_count names).
        families = {self._family_of(metric, types) for metric in by_metric}
        assert families == set(types)
        components = by_metric["repro_modeled_energy_component_picojoules_total"]
        assert {labels["component"] for labels, _v in components} == {
            "dac",
            "adc",
            "crossbar",
            "digital",
        }
        replicas = by_metric["repro_replica_engine_runs_total"]
        assert {(labels["model"], labels["replica"]) for labels, _v in replicas} == {
            ("plain", "0"),
            ("plain", "1"),
        }
        assert by_metric["repro_replicas_total"] == [({"model": "plain"}, 3.0)]
        assert by_metric["repro_overload_state"] == [({}, 1.0)]
        shed = [
            value
            for labels, value in by_metric["repro_admission_shed_total"]
            if labels["model"] == NASTY_MODEL
        ]
        assert shed == [1.0]

    def test_content_type_constant_is_version_0_0_4(self):
        assert PROMETHEUS_CONTENT_TYPE == "text/plain; version=0.0.4; charset=utf-8"

    def _histogram_series(self, samples, types):
        """Group histogram samples: (family, model) -> {suffix: ...}."""
        series: dict[tuple, dict] = {}
        for metric, labels, value in samples:
            family = self._family_of(metric, types)
            if types[family] != "histogram":
                continue
            key = (family, labels.get("model"))
            entry = series.setdefault(key, {"buckets": []})
            if metric.endswith("_bucket"):
                entry["buckets"].append((labels["le"], value))
            elif metric.endswith("_sum"):
                entry["sum"] = value
            elif metric.endswith("_count"):
                entry["count"] = value
        return series

    def test_histogram_families_are_declared_and_populated(self, rich_collector):
        samples, types = self._parse(rich_collector.to_prometheus())
        histogram_families = {m for m, kind in types.items() if kind == "histogram"}
        assert histogram_families == {
            "repro_request_latency_seconds",
            "repro_request_queue_wait_seconds",
            "repro_engine_run_seconds",
        }
        series = self._histogram_series(samples, types)
        models = {model for _family, model in series}
        assert NASTY_MODEL in models and "plain" in models

    def test_histogram_buckets_monotone_and_inf_equals_count(self, rich_collector):
        samples, types = self._parse(rich_collector.to_prometheus())
        for (family, model), entry in self._histogram_series(samples, types).items():
            buckets = entry["buckets"]
            assert buckets, (family, model)
            les = [le for le, _v in buckets]
            assert les[-1] == "+Inf", f"{family} missing +Inf bucket"
            finite = [float(le) for le in les[:-1]]
            assert finite == sorted(finite), f"{family} le values out of order"
            counts = [value for _le, value in buckets]
            assert counts == sorted(counts), f"{family} buckets not cumulative"
            assert counts[-1] == entry["count"], f"{family} +Inf != _count"

    def test_histogram_sums_match_recorded_observations(self, rich_collector):
        samples, types = self._parse(rich_collector.to_prometheus())
        series = self._histogram_series(samples, types)
        # The fixture records: "plain" latency 1.0 / queue wait 0.5 and two
        # engine runs 0.25 + 0.125; NASTY latency 0.6 / queue wait 0.5 and
        # one 0.1 engine run (see make_trace defaults and rich_collector).
        expect = {
            ("repro_request_latency_seconds", "plain"): (1, 1.0),
            ("repro_request_queue_wait_seconds", "plain"): (1, 0.5),
            ("repro_engine_run_seconds", "plain"): (2, 0.375),
            ("repro_request_latency_seconds", NASTY_MODEL): (1, 0.6),
            ("repro_request_queue_wait_seconds", NASTY_MODEL): (1, 0.5),
            ("repro_engine_run_seconds", NASTY_MODEL): (1, 0.1),
        }
        assert set(series) == set(expect)
        for key, (count, total) in expect.items():
            assert series[key]["count"] == count, key
            assert series[key]["sum"] == pytest.approx(total), key


class TestLatencyHistogram:
    def test_bounds_validated(self):
        with pytest.raises(ValueError, match="positive"):
            LatencyHistogram(bounds=(0.0, 1.0))
        with pytest.raises(ValueError, match="increasing"):
            LatencyHistogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError, match="positive"):
            LatencyHistogram(bounds=())

    def test_observe_count_sum_and_buckets(self):
        histogram = LatencyHistogram(bounds=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.5, 3.0, 100.0):
            histogram.observe(value)
        assert histogram.count == 5
        assert histogram.sum == pytest.approx(106.5)
        assert histogram.counts == [1, 2, 1, 1]  # <=1, <=2, <=4, +Inf
        cumulative = histogram.cumulative_counts()
        assert cumulative == [1, 3, 4, 5]
        assert cumulative[-1] == histogram.count

    def test_quantile_interpolates_within_bucket(self):
        histogram = LatencyHistogram(bounds=(1.0, 2.0, 4.0))
        for _ in range(4):
            histogram.observe(1.5)  # all in the (1, 2] bucket
        # PromQL semantics: rank p*count interpolated between the bounds.
        assert histogram.quantile(0.5) == pytest.approx(1.5)
        assert histogram.quantile(1.0) == pytest.approx(2.0)
        assert histogram.quantile(0.0) == pytest.approx(1.0)

    def test_quantile_edges(self):
        histogram = LatencyHistogram(bounds=(1.0, 2.0))
        assert histogram.quantile(0.5) is None  # empty
        histogram.observe(0.25)  # first bucket interpolates from zero
        assert 0.0 < histogram.quantile(0.5) <= 1.0
        histogram.observe(50.0)  # +Inf bucket clamps to the top bound
        assert histogram.quantile(1.0) == pytest.approx(2.0)
        with pytest.raises(ValueError, match="quantile"):
            histogram.quantile(1.5)

    def test_default_bounds_span_microseconds_to_minutes(self):
        histogram = LatencyHistogram()
        assert histogram.bounds[0] <= 1e-6
        assert histogram.bounds[-1] >= 60.0
        histogram.observe(0.003)
        assert 0.001 < histogram.quantile(0.5) < 0.01

    def test_as_dict_and_snapshot_independence(self):
        histogram = LatencyHistogram(bounds=(1.0, 2.0))
        histogram.observe(1.5)
        summary = histogram.as_dict()
        assert summary["count"] == 1
        assert summary["sum_s"] == pytest.approx(1.5)
        assert set(summary) == {"count", "sum_s", "p50_s", "p90_s", "p99_s"}
        snapshot = histogram.snapshot()
        histogram.observe(1.5)
        assert snapshot.count == 1 and histogram.count == 2

    def test_collector_histograms_and_quantiles(self):
        collector = TelemetryCollector()
        assert collector.histogram("m", "latency") is None
        assert collector.quantile("m", 0.5) is None
        collector.record(make_trace())  # latency 1.0, queue wait 0.5
        collector.record_engine_run("m", 4, 0.25)
        latency = collector.histogram("m", "latency")
        assert latency.count == 1 and latency.sum == pytest.approx(1.0)
        assert collector.histogram("m", "queue_wait").sum == pytest.approx(0.5)
        assert collector.histogram("m", "engine").sum == pytest.approx(0.25)
        assert 0.5 < collector.quantile("m", 0.5) <= 1.0
        assert collector.quantile("m", 0.5, metric="engine") <= 0.25 * 2
        with pytest.raises(ValueError, match="metric"):
            collector.histogram("m", "nope")
        with pytest.raises(ValueError, match="metric"):
            collector.quantile("m", 0.5, metric="nope")
        # The returned histogram is a snapshot: mutating it is invisible.
        latency.observe(9.0)
        assert collector.histogram("m", "latency").count == 1

    def test_export_json_carries_histograms(self):
        collector = TelemetryCollector()
        collector.record(make_trace())
        document = json.loads(collector.export_json())
        histograms = document["models"]["m"]["histograms"]
        assert histograms["latency"]["count"] == 1
        assert histograms["queue_wait"]["sum_s"] == pytest.approx(0.5)


class TestSloServing:
    def _request(self, name, enqueued_at, priority=0, deadline_s=None, samples=1):
        return InferenceRequest(
            model_name=name,
            inputs=np.zeros((samples, 2)),
            future=InferenceFuture(),
            enqueued_at=enqueued_at,
            priority=priority,
            deadline_s=deadline_s,
        )

    def test_earliest_deadline_first_dispatch(self):
        queue = RequestQueue()
        now = time.monotonic()
        queue.submit(self._request("loose", now - 1.0, deadline_s=now + 30.0))
        queue.submit(self._request("tight", now, deadline_s=now + 0.05))
        queue.close()  # drain mode: every model is ready, urgency decides
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        assert queue.next_batch(policy)[0].model_name == "tight"
        assert queue.next_batch(policy)[0].model_name == "loose"
        assert queue.next_batch(policy) is None

    def test_priority_classes_beat_age(self):
        # Within the starvation limit, priority outranks age; beyond it the
        # aging rule promotes the old request (see TestStarvationAging in
        # tests/test_scheduler_queue.py), so the limit is raised here to keep
        # the 5-second-old request un-starved.
        queue = RequestQueue()
        now = time.monotonic()
        queue.submit(
            self._request("old_low", now - 5.0, priority=0, deadline_s=now + 1.0)
        )
        queue.submit(self._request("new_high", now, priority=1, deadline_s=now + 1.0))
        queue.close()
        policy = BatchingPolicy(
            max_batch_size=8, max_delay_s=10.0, starvation_limit_s=30.0
        )
        assert queue.next_batch(policy)[0].model_name == "new_high"
        assert queue.next_batch(policy)[0].model_name == "old_low"

    def test_fifo_without_slo_hints(self):
        queue = RequestQueue()
        now = time.monotonic()
        queue.submit(self._request("second", now))
        queue.submit(self._request("first", now - 1.0))
        queue.close()
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        assert queue.next_batch(policy)[0].model_name == "first"
        assert queue.next_batch(policy)[0].model_name == "second"

    def test_slo_mode_off_forces_fifo(self):
        queue = RequestQueue(slo_mode=False)
        now = time.monotonic()
        queue.submit(self._request("older", now - 1.0, deadline_s=now + 30.0))
        queue.submit(self._request("urgent", now, deadline_s=now + 0.01))
        queue.close()
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        assert queue.next_batch(policy)[0].model_name == "older"

    def test_failing_estimator_degrades_to_no_prediction(self):
        def broken(name, samples):
            raise KeyError(name)

        queue = RequestQueue(latency_estimator=broken)
        now = time.monotonic()
        queue.submit(self._request("m", now, deadline_s=now + 30.0))
        queue.close()
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        batch = queue.next_batch(policy)  # must not raise
        assert batch[0].model_name == "m"

    def test_latency_estimator_tightens_slack(self):
        # Two models, same deadline; the one predicted to run longer has
        # less slack and must dispatch first.
        estimates = {"slow": 5.0, "fast": 0.001}
        queue = RequestQueue(latency_estimator=lambda name, n: estimates[name])
        now = time.monotonic()
        queue.submit(self._request("fast", now - 1.0, deadline_s=now + 10.0))
        queue.submit(self._request("slow", now, deadline_s=now + 10.0))
        queue.close()
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        assert queue.next_batch(policy)[0].model_name == "slow"

    def test_urgency_judged_on_dispatchable_batch_only(self):
        # Model "mixed" has a bulk backlog at its head and an urgent request
        # deep in its queue, beyond the batch that would dispatch now.  That
        # deep deadline must not let the bulk head batch jump a genuinely
        # urgent batch of another model.
        queue = RequestQueue()
        now = time.monotonic()
        for _ in range(3):
            queue.submit(self._request("mixed", now - 0.5, samples=4))
        queue.submit(self._request("mixed", now, deadline_s=now + 0.1))
        queue.submit(self._request("other", now, deadline_s=now + 5.0))
        queue.close()
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        # "mixed"'s dispatchable batch is the 2x4-sample bulk prefix (no
        # deadline -> budget slack ~10s); "other"'s batch carries the 5s
        # deadline -> less slack -> dispatches first.
        assert queue.next_batch(policy)[0].model_name == "other"
        bulk = queue.next_batch(policy)
        assert [r.model_name for r in bulk] == ["mixed", "mixed"]
        urgent = queue.next_batch(policy)
        assert [r.deadline_s is not None for r in urgent] == [False, True]
        assert queue.next_batch(policy) is None

    def test_deadline_at_risk_dispatches_partial_batch(self):
        queue = RequestQueue()
        now = time.monotonic()
        queue.submit(self._request("m", now, deadline_s=now + 0.01))
        policy = BatchingPolicy(max_batch_size=64, max_delay_s=30.0)
        start = time.monotonic()
        batch = queue.next_batch(policy)  # queue still open, batch partial
        assert len(batch) == 1
        assert time.monotonic() - start < 5.0  # not the 30s delay budget

    def test_server_bit_identical_and_traced(self, tiny_mlp_model, rng):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model, arch=RAELLA_ARCH)
        cost = registry.cost_model("mlp")
        assert cost is not None
        requests = [np.abs(rng.normal(0, 1, size=(2, 16))) for _ in range(12)]
        direct = [registry.engine("mlp").run(r) for r in requests]

        telemetry = TelemetryCollector()
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=0.002)
        server = InferenceServer(registry, policy, telemetry=telemetry)
        futures = [
            server.submit("mlp", r, priority=i % 3, deadline_s=30.0)
            for i, r in enumerate(requests)
        ]
        with server:
            results = [f.result(timeout=30) for f in futures]
        for expected, got in zip(direct, results):
            assert np.array_equal(expected, got)

        aggregate = telemetry.aggregate("mlp")
        assert aggregate.requests == 12
        assert aggregate.samples == 24
        assert aggregate.deadline_requests == 12
        traces = telemetry.traces("mlp")
        assert len(traces) == 12
        for trace in traces:
            assert trace.queue_wait_s >= 0
            assert trace.batch_size >= trace.n_samples
            assert trace.modeled_energy_pj == pytest.approx(cost.energy_pj(2))
            # Sample-weighted share of the batch's modeled latency: the
            # pipeline fill is charged once per batch, not once per request.
            assert trace.modeled_latency_us == pytest.approx(
                cost.batch_latency_us(trace.batch_size)
                * trace.n_samples
                / trace.batch_size
            )

    def test_server_records_deadline_misses(self, tiny_mlp_model, rng):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model, arch=RAELLA_ARCH)
        telemetry = TelemetryCollector()
        server = InferenceServer(registry, telemetry=telemetry)
        # An (effectively) already-expired deadline: the miss must be
        # recorded, and the request must still complete with a result.
        future = server.submit(
            "mlp", np.abs(rng.normal(0, 1, size=(1, 16))), deadline_s=1e-9
        )
        with server:
            result = future.result(timeout=30)
        assert result.shape == (1, 4)
        aggregate = telemetry.aggregate("mlp")
        assert aggregate.deadline_requests == 1
        assert aggregate.deadline_misses == 1

    def test_reregistering_with_arch_wires_cost_model(self, tiny_mlp_model, rng):
        # The server must not cache the *absence* of cost tables: a tenant
        # re-registered with an architecture gains metered traces.
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)  # no arch: unmetered
        telemetry = TelemetryCollector()
        inputs = np.abs(rng.normal(0, 1, size=(1, 16)))
        with InferenceServer(registry, telemetry=telemetry) as server:
            server.infer("mlp", inputs, timeout=30)
            assert telemetry.traces("mlp")[-1].modeled_energy_pj is None
            registry.unregister("mlp")
            registry.register("mlp", tiny_mlp_model, arch=RAELLA_ARCH)
            server.infer("mlp", inputs, timeout=30)
        assert telemetry.traces("mlp")[-1].modeled_energy_pj > 0

    def test_reregistered_name_uses_fresh_cost_tables(
        self, tiny_mlp_model, tiny_conv_model, rng
    ):
        # Re-registering a different model under the same name must re-wire
        # the collector with the new tables, not bill against the old ones.
        registry = ModelRegistry()
        registry.register("m", tiny_mlp_model, arch=RAELLA_ARCH)
        old_energy = registry.cost_model("m").energy_pj(1)
        telemetry = TelemetryCollector()
        with InferenceServer(registry, telemetry=telemetry) as server:
            server.infer("m", np.abs(rng.normal(0, 1, size=(1, 16))), timeout=30)
            assert telemetry.traces("m")[-1].modeled_energy_pj == pytest.approx(
                old_energy
            )
            registry.unregister("m")
            registry.register("m", tiny_conv_model, arch=RAELLA_ARCH)
            new_energy = registry.cost_model("m").energy_pj(1)
            assert new_energy != pytest.approx(old_energy)
            server.infer("m", np.abs(rng.normal(0, 1, size=(1, 3, 8, 8))), timeout=30)
        assert telemetry.traces("m")[-1].modeled_energy_pj == pytest.approx(new_energy)

    def test_submit_rejects_nonpositive_deadline(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        server = InferenceServer(registry)
        with pytest.raises(ValueError, match="deadline_s must be positive"):
            server.submit("mlp", np.zeros((1, 16)), deadline_s=0.0)

    def test_registry_cost_model_lifecycle(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("plain", tiny_mlp_model)
        assert registry.cost_model("plain") is None
        with pytest.raises(KeyError):
            registry.cost_model("absent")
        registry.unregister("plain")
