"""Tests for the serving layer: sharding, float32 fast path, registry, server.

The serving contract mirrors the runtime's: everything stays *bit-identical*
to the sequential float64 :class:`~repro.runtime.NetworkEngine` path --
coalescing requests, pipelining micro-batches across layer stages, and the
float32 GEMM fast path are pure scheduling/throughput changes.
"""

import threading

import numpy as np
import pytest

from repro.analog.noise import GaussianColumnNoise
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.runtime import ExecutorPool, NetworkEngine, float32_gemm_is_exact
from repro.runtime.vectorized import VectorizedLayerExecutor
from repro.serve import (
    BatchingPolicy,
    InferenceServer,
    ModelRegistry,
    ServerStoppedError,
    ShardedEngine,
)
from tests.test_runtime_engine import assert_stats_equal


def private_pool(**kwargs) -> ExecutorPool:
    """A pool with no shared weight cache, for isolated parity comparisons."""
    return ExecutorPool(weight_cache=None, **kwargs)


class TestFloat32FastPath:
    def test_exactness_predicate(self):
        # 512 rows of 4-bit slice products: bound 512 * 15 * 30 << 2**24.
        safe = np.full((512, 8), 30, dtype=np.int64)
        assert float32_gemm_is_exact(15, safe)
        # One huge weight pushes the bound past the 24-bit mantissa.
        unsafe = np.full((1, 1), 1 << 22, dtype=np.int64)
        assert not float32_gemm_is_exact(15, unsafe)
        assert float32_gemm_is_exact(15, np.empty((0, 0)))

    def test_default_config_uses_float32(self, tiny_linear_layer):
        executor = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig(), weight_cache=None, float32=True
        )
        assert executor.gemm_dtypes == [np.float32]

    def test_opt_out_stays_float64(self, tiny_linear_layer):
        executor = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig(), weight_cache=None
        )
        assert executor.gemm_dtypes == [np.float64]

    @pytest.mark.parametrize("rows", [512, 7])  # single and multi chunk
    def test_outputs_and_stats_bit_identical(
        self, rows, tiny_linear_layer, tiny_patches
    ):
        config = PimLayerConfig(crossbar_rows=rows, collect_column_sums=True)
        reference = PimLayerExecutor(tiny_linear_layer, config)
        fast = VectorizedLayerExecutor(
            tiny_linear_layer, config, weight_cache=None, float32=True
        )
        assert np.float32 in fast.gemm_dtypes
        assert np.array_equal(reference.matmul(tiny_patches), fast.matmul(tiny_patches))
        assert_stats_equal(reference.stats, fast.stats)

    def test_seeded_noise_bit_identical(self, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig()
        reference = VectorizedLayerExecutor(
            tiny_linear_layer,
            config,
            noise=GaussianColumnNoise(level=0.08, seed=3),
            weight_cache=None,
        )
        fast = VectorizedLayerExecutor(
            tiny_linear_layer,
            config,
            noise=GaussianColumnNoise(level=0.08, seed=3),
            weight_cache=None,
            float32=True,
        )
        assert np.array_equal(reference.matmul(tiny_patches), fast.matmul(tiny_patches))
        assert_stats_equal(reference.stats, fast.stats)

    def test_engine_level_parity(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(6, 16)))
        reference = NetworkEngine.build(tiny_mlp_model, pool=private_pool())
        fast = NetworkEngine.build(tiny_mlp_model, pool=private_pool(), float32=True)
        assert np.array_equal(reference.run(inputs), fast.run(inputs))
        assert_stats_equal(reference.network_statistics(), fast.network_statistics())

    def test_pool_keys_float32_separately(self, tiny_linear_layer):
        pool = private_pool()
        plain = pool.get(tiny_linear_layer, PimLayerConfig())
        fast = pool.get(tiny_linear_layer, PimLayerConfig(), float32=True)
        assert plain is not fast and len(pool) == 2
        assert pool.get(tiny_linear_layer, PimLayerConfig(), float32=True) is fast

    def test_reference_factory_ignores_float32(self, tiny_linear_layer):
        pool = private_pool(executor_factory=PimLayerExecutor, float32=True)
        executor = pool.get(tiny_linear_layer, PimLayerConfig())
        assert type(executor) is PimLayerExecutor
        # Normalised key: explicit float32 lookups reuse the same executor.
        assert pool.get(tiny_linear_layer, PimLayerConfig(), float32=True) is executor


class TestShardedEngine:
    def test_mlp_parity_with_sequential(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(10, 16)))
        sequential = NetworkEngine.build(
            tiny_mlp_model, pool=private_pool(), micro_batch=3
        )
        sharded = ShardedEngine.build(
            tiny_mlp_model, pool=private_pool(), micro_batch=3
        )
        assert np.array_equal(sequential.run(inputs), sharded.run(inputs))
        assert_stats_equal(
            sequential.network_statistics(), sharded.network_statistics()
        )

    def test_conv_model_parity(self, tiny_conv_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(7, 3, 8, 8)))
        sequential = NetworkEngine.build(tiny_conv_model, pool=private_pool())
        sharded = ShardedEngine.build(
            tiny_conv_model, pool=private_pool(), micro_batch=2
        )
        assert np.array_equal(sequential.run(inputs), sharded.run(inputs))

    def test_shared_noise_rng_falls_back_sequentially(self, tiny_mlp_model, rng):
        # NetworkEngine.build hands every layer the same noise object; its
        # RNG draws in layer-interleaved order, which a pipeline cannot
        # reproduce -- ShardedEngine must detect this and stay sequential.
        inputs = np.abs(rng.normal(0, 1, size=(9, 16)))
        sequential = NetworkEngine.build(
            tiny_mlp_model,
            pool=private_pool(),
            micro_batch=4,
            noise=GaussianColumnNoise(level=0.08, seed=5),
        )
        sharded = ShardedEngine.build(
            tiny_mlp_model,
            pool=private_pool(),
            micro_batch=4,
            noise=GaussianColumnNoise(level=0.08, seed=5),
        )
        assert sharded._shares_stateful_noise()
        assert np.array_equal(sequential.run(inputs), sharded.run(inputs))
        assert_stats_equal(
            sequential.network_statistics(), sharded.network_statistics()
        )

    def test_per_layer_noise_pipelines_bit_identically(self, tiny_mlp_model, rng):
        # With one seeded noise model per layer the pipeline really runs,
        # and FIFO single-thread stages draw identical values per executor.
        inputs = np.abs(rng.normal(0, 1, size=(9, 16)))

        def engine(cls, **kwargs):
            executors = {
                layer.name: VectorizedLayerExecutor(
                    layer,
                    PimLayerConfig(),
                    noise=GaussianColumnNoise(level=0.08, seed=40 + i),
                    weight_cache=None,
                )
                for i, layer in enumerate(tiny_mlp_model.matmul_layers())
            }
            return cls(tiny_mlp_model, executors, **kwargs)

        sequential = engine(NetworkEngine, micro_batch=4)
        sharded = engine(ShardedEngine, micro_batch=4)
        assert not sharded._shares_stateful_noise()
        assert np.array_equal(sequential.run(inputs), sharded.run(inputs))
        assert_stats_equal(
            sequential.network_statistics(), sharded.network_statistics()
        )

    def test_float32_sharded_parity(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(10, 16)))
        sequential = NetworkEngine.build(tiny_mlp_model, pool=private_pool())
        sharded = ShardedEngine.build(
            tiny_mlp_model, pool=private_pool(), micro_batch=2, float32=True
        )
        assert np.array_equal(sequential.run(inputs), sharded.run(inputs))

    def test_return_codes_parity(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(6, 16)))
        sequential = NetworkEngine.build(tiny_mlp_model, pool=private_pool())
        sharded = ShardedEngine.build(
            tiny_mlp_model, pool=private_pool(), micro_batch=2
        )
        assert np.array_equal(
            sequential.run(inputs, return_codes=True),
            sharded.run(inputs, return_codes=True),
        )

    def test_stage_groups_one_per_matmul_layer(self, tiny_conv_model):
        engine = ShardedEngine.build(tiny_conv_model, pool=private_pool())
        groups = engine.stage_groups()
        assert len(groups) == len(tiny_conv_model.matmul_layers())
        assert [layer.name for group in groups for layer in group] == [
            layer.name for layer in tiny_conv_model.layers
        ]

    def test_n_stages_merges_groups(self, tiny_conv_model):
        engine = ShardedEngine.build(tiny_conv_model, pool=private_pool(), n_stages=2)
        assert len(engine.stage_groups()) == 2
        oversubscribed = ShardedEngine.build(
            tiny_conv_model, pool=private_pool(), n_stages=99
        )
        assert len(oversubscribed.stage_groups()) == 3

    def test_invalid_n_stages_rejected(self, tiny_mlp_model):
        with pytest.raises(ValueError):
            ShardedEngine.build(tiny_mlp_model, pool=private_pool(), n_stages=0)

    def test_stage_errors_propagate(self, tiny_mlp_model, rng):
        engine = ShardedEngine.build(tiny_mlp_model, pool=private_pool(), micro_batch=2)

        def explode(codes):
            raise RuntimeError("crossbar fault")

        engine.executors["fc2"].matmul = explode
        with pytest.raises(RuntimeError, match="crossbar fault"):
            engine.run(np.abs(rng.normal(0, 1, size=(6, 16))))

    def test_invalid_micro_batch_rejected(self, tiny_mlp_model, rng):
        engine = ShardedEngine.build(tiny_mlp_model, pool=private_pool())
        with pytest.raises(ValueError):
            engine.run(np.abs(rng.normal(0, 1, size=(4, 16))), micro_batch=0)


class TestModelRegistry:
    def test_register_and_lookup(self, tiny_mlp_model):
        registry = ModelRegistry()
        engine = registry.register("mlp", tiny_mlp_model)
        assert registry.engine("mlp") is engine
        assert registry.model("mlp") is tiny_mlp_model
        assert "mlp" in registry and registry.names() == ["mlp"] and len(registry) == 1

    def test_duplicate_name_rejected(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        with pytest.raises(ValueError):
            registry.register("mlp", tiny_mlp_model)

    def test_uncalibrated_model_rejected(self, rng):
        from repro.nn.layers import Linear
        from repro.nn.model import QuantizedModel
        from repro.nn.synthetic import synthetic_linear_weights

        model = QuantizedModel(
            "raw",
            [Linear("fc", synthetic_linear_weights(4, 8, rng))],
            input_shape=(8,),
        )
        with pytest.raises(ValueError):
            ModelRegistry().register("raw", model)

    def test_unknown_lookup_and_unregister(self, tiny_mlp_model):
        registry = ModelRegistry()
        with pytest.raises(KeyError):
            registry.engine("ghost")
        assert registry.unregister("ghost") is False
        registry.register("mlp", tiny_mlp_model)
        assert registry.unregister("mlp") is True
        assert registry.unregister("mlp") is False
        assert "mlp" not in registry

    def test_tenants_share_pool_and_weight_cache(self, tiny_mlp_model, rng):
        from repro.nn.layers import Linear
        from repro.nn.model import QuantizedModel
        from repro.nn.synthetic import synthetic_linear_weights

        registry = ModelRegistry()
        registry.register("a", tiny_mlp_model)
        assert len(registry.pool) == len(tiny_mlp_model.matmul_layers())
        # A twin tenant with identical weight codes reuses the encodings.
        weights = synthetic_linear_weights(4, 8, rng)
        twins = []
        inputs = np.abs(rng.normal(0, 1, size=(16, 8)))
        for name in ("twin_a", "twin_b"):
            layer = Linear(f"{name}_fc", weights.copy())
            model = QuantizedModel(name, [layer], input_shape=(8,))
            model.calibrate(inputs)
            twins.append(model)
        before = registry.weight_cache.misses
        for name, model in zip(("b", "c"), twins):
            registry.register(name, model)
        assert registry.weight_cache.misses == before + 1
        assert registry.weight_cache.hits >= 1

    def test_sharded_registration(self, tiny_mlp_model):
        registry = ModelRegistry()
        engine = registry.register("mlp", tiny_mlp_model, sharded=True, micro_batch=2)
        assert isinstance(engine, ShardedEngine)
        # n_stages alone also implies a sharded engine.
        assert isinstance(
            registry.register("mlp2", tiny_mlp_model, n_stages=2), ShardedEngine
        )


class TestInferenceServer:
    @pytest.fixture
    def registry(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        return registry

    def test_deterministic_batching_and_bit_identical_results(self, registry, rng):
        inputs = np.abs(rng.normal(0, 1, size=(10, 16)))
        direct = registry.engine("mlp").run(inputs)
        server = InferenceServer(
            registry, BatchingPolicy(max_batch_size=4, max_delay_s=10.0)
        )
        # Submitting before start makes batch formation deterministic; waiting
        # after stop() lets the trailing partial batch dispatch via queue
        # drain instead of idling out the 10s latency budget.
        futures = [server.submit("mlp", inputs[i : i + 1]) for i in range(10)]
        with server:
            pass
        results = [f.result(timeout=30) for f in futures]
        assert np.array_equal(np.concatenate(results, axis=0), direct)
        stats = server.statistics()
        assert stats.batches_executed == 3  # 4 + 4 + 2 samples
        assert stats.max_batch_size == 4
        assert stats.requests_completed == 10 and stats.requests_failed == 0

    def test_mixed_size_requests_split_correctly(self, registry, rng):
        sizes = [3, 1, 2, 4]
        chunks = [np.abs(rng.normal(0, 1, size=(s, 16))) for s in sizes]
        direct = [registry.engine("mlp").run(c) for c in chunks]
        server = InferenceServer(
            registry, BatchingPolicy(max_batch_size=6, max_delay_s=10.0)
        )
        futures = [server.submit("mlp", c) for c in chunks]
        with server:
            pass
        results = [f.result(timeout=30) for f in futures]
        for want, got in zip(direct, results):
            assert np.array_equal(want, got)

    def test_oversized_request_runs_alone(self, registry, rng):
        inputs = np.abs(rng.normal(0, 1, size=(9, 16)))
        server = InferenceServer(
            registry, BatchingPolicy(max_batch_size=4, max_delay_s=10.0)
        )
        future = server.submit("mlp", inputs)
        with server:
            result = future.result(timeout=30)
        assert result.shape[0] == 9
        assert server.statistics().max_batch_size == 9

    def test_multi_tenant_requests(self, tiny_mlp_model, tiny_conv_model, rng):
        registry = ModelRegistry()
        registry.register("mlp", tiny_mlp_model)
        registry.register("conv", tiny_conv_model)
        mlp_in = np.abs(rng.normal(0, 1, size=(4, 16)))
        conv_in = np.abs(rng.normal(0, 1, size=(3, 3, 8, 8)))
        direct_mlp = registry.engine("mlp").run(mlp_in)
        direct_conv = registry.engine("conv").run(conv_in)
        with InferenceServer(registry) as server:
            mlp_future = server.submit("mlp", mlp_in)
            conv_future = server.submit("conv", conv_in)
            assert np.array_equal(mlp_future.result(timeout=30), direct_mlp)
            assert np.array_equal(conv_future.result(timeout=30), direct_conv)
            stats = server.statistics()
        assert set(stats.batches_per_model) == {"mlp", "conv"}

    def test_concurrent_clients(self, registry, rng):
        inputs = np.abs(rng.normal(0, 1, size=(12, 16)))
        direct = registry.engine("mlp").run(inputs)
        results: dict[int, np.ndarray] = {}
        lock = threading.Lock()

        def client(i, server):
            out = server.infer("mlp", inputs[i : i + 1], timeout=30)
            with lock:
                results[i] = out

        with InferenceServer(
            registry, BatchingPolicy(max_batch_size=4, max_delay_s=0.002)
        ) as server:
            threads = [
                threading.Thread(target=client, args=(i, server))
                for i in range(12)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        stacked = np.concatenate([results[i] for i in range(12)], axis=0)
        assert np.array_equal(stacked, direct)

    def test_shared_noise_model_locks_overlap(self, tiny_mlp_model, tiny_conv_model):
        # Engines with disjoint executors but one shared seeded noise RNG
        # must serialise through a common lock (Generator is not thread-safe).
        noise = GaussianColumnNoise(level=0.05, seed=1)
        registry = ModelRegistry()
        registry.register("a", tiny_mlp_model, noise=noise)
        registry.register("b", tiny_conv_model, noise=noise)
        server = InferenceServer(registry)
        locks_a = set(map(id, server._engine_locks(registry.engine("a"))))
        locks_b = set(map(id, server._engine_locks(registry.engine("b"))))
        assert locks_a & locks_b

    def test_unknown_model_rejected_at_submit(self, registry, rng):
        server = InferenceServer(registry)
        with pytest.raises(KeyError):
            server.submit("ghost", np.zeros((1, 16)))

    def test_bad_shapes_rejected_at_submit(self, registry):
        server = InferenceServer(registry)
        with pytest.raises(ValueError):
            server.submit("mlp", np.zeros(16))  # missing batch dimension
        with pytest.raises(ValueError):
            server.submit("mlp", np.zeros((2, 7)))  # wrong feature count
        with pytest.raises(ValueError):
            server.submit("mlp", np.zeros((0, 16)))  # empty request

    def test_engine_errors_reach_every_future(self, registry, rng):
        def explode(inputs, **kwargs):
            raise RuntimeError("tile power loss")

        registry.engine("mlp").run = explode
        server = InferenceServer(
            registry, BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        )
        futures = [server.submit("mlp", np.zeros((1, 16))) for _ in range(3)]
        with server:
            pass
        for future in futures:
            with pytest.raises(RuntimeError, match="tile power loss"):
                future.result(timeout=30)
        assert server.statistics().requests_failed == 3

    def test_engine_errors_deliver_independent_exceptions(self, registry):
        # A failed batch must not share one exception instance across its
        # futures: concurrent result() calls re-raising a shared object
        # race on its __traceback__/__context__ mutation.
        original = RuntimeError("tile power loss")

        def explode(inputs, **kwargs):
            raise original

        registry.engine("mlp").run = explode
        server = InferenceServer(
            registry, BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        )
        futures = [server.submit("mlp", np.zeros((1, 16))) for _ in range(2)]
        with server:
            pass
        raised = []
        for future in futures:
            with pytest.raises(RuntimeError, match="tile power loss") as excinfo:
                future.result(timeout=30)
            raised.append(excinfo.value)
        first, second = raised
        assert first is not second and first is not original
        assert first.__cause__ is original and second.__cause__ is original

    def test_engine_failure_statistics(self, registry):
        # requests_failed counts the batch; completion-side counters and the
        # dispatch backlog must not -- a failed batch still drains.
        def explode(inputs, **kwargs):
            raise RuntimeError("tile power loss")

        registry.engine("mlp").run = explode
        server = InferenceServer(
            registry, BatchingPolicy(max_batch_size=8, max_delay_s=10.0)
        )
        futures = [server.submit("mlp", np.zeros((1, 16))) for _ in range(3)]
        with server:
            pass
        for future in futures:
            assert future.done()
        stats = server.statistics()
        assert stats.requests_failed == 3
        assert stats.requests_completed == 0
        assert stats.batches_executed == 0
        assert stats.queue_wait_s == 0.0
        assert server._dispatched_samples == {}

    def test_submit_after_stop_rejected(self, registry):
        server = InferenceServer(registry)
        with server:
            pass
        with pytest.raises(RuntimeError):
            server.submit("mlp", np.zeros((1, 16)))

    def test_submit_after_stop_fails_fast_without_counter_drift(self, registry):
        from repro.serve import AdmissionController
        from repro.telemetry import TelemetryCollector

        telemetry = TelemetryCollector()
        server = InferenceServer(
            registry, telemetry=telemetry, admission=AdmissionController()
        )
        with server:
            server.infer("mlp", np.zeros((1, 16)), timeout=30)
        before_stats = server.statistics()
        before_admission = server.admission.counters()
        before_aggregate = telemetry.aggregate("mlp")
        with pytest.raises(ServerStoppedError, match="stopped"):
            server.submit("mlp", np.zeros((1, 16)))
        # The rejected submit left no trace: no submitted/accepted counter
        # moved, and the admission controller never even decided.
        after_stats = server.statistics()
        assert after_stats.requests_submitted == before_stats.requests_submitted
        assert after_stats.requests_shed == before_stats.requests_shed
        assert server.admission.counters() == before_admission
        after_aggregate = telemetry.aggregate("mlp")
        assert after_aggregate.admitted_requests == before_aggregate.admitted_requests
        assert after_aggregate.shed_requests == before_aggregate.shed_requests
        # stop -> start -> submit works again.
        with server:
            assert server.infer("mlp", np.zeros((1, 16)), timeout=30).shape == (1, 4)
        assert (
            server.statistics().requests_submitted
            == before_stats.requests_submitted + 1
        )

    def test_stop_racing_submit_retracts_admission_count(self, registry):
        # stop() can close the queue between submit's fail-fast check and
        # the enqueue; the admission decision was already counted by then
        # and must be taken back so counters only reflect enqueued work.
        from repro.serve import AdmissionController

        server = InferenceServer(registry, admission=AdmissionController())

        def closed_submit(request):
            raise RuntimeError("request queue is closed")

        server._queue.submit = closed_submit  # the race, deterministically
        before = server.admission.counters()
        with pytest.raises(ServerStoppedError):
            server.submit("mlp", np.zeros((1, 16)))
        assert server.admission.counters() == before

    def test_pruning_keeps_in_flight_lock_entries(self, registry, tiny_conv_model):
        # An unregistered model's lock entries must survive pruning while a
        # batch still uses them: re-registering the same pooled executors
        # has to land on the same locks, or two batches could run one
        # unguarded executor concurrently.
        server = InferenceServer(registry)
        in_flight = server._engine_locks(registry.engine("mlp"))
        mlp_ids = set(server._executor_locks)
        registry.register("conv", tiny_conv_model)
        registry.unregister("mlp")  # generation change; mlp no longer live
        conv_entries = server._engine_locks(registry.engine("conv"))  # prunes
        assert mlp_ids <= set(server._executor_locks)  # kept: refs > 0
        server._release_engine_locks(in_flight)
        server._release_engine_locks(conv_entries)
        registry.unregister("conv")  # generation change with refs drained
        registry.register("conv_again", tiny_conv_model)
        server._engine_locks(registry.engine("conv_again"))
        assert not mlp_ids & set(server._executor_locks)

    def test_executor_lock_table_stays_bounded(self, rng):
        # Register/unregister churn must not leak _executor_locks entries:
        # the table prunes to the live registry on generation change.
        from repro.nn.layers import Linear
        from repro.nn.model import QuantizedModel
        from repro.nn.synthetic import synthetic_linear_weights

        registry = ModelRegistry()
        inputs = np.abs(rng.normal(0, 1, size=(2, 8)))
        with InferenceServer(registry) as server:
            for i in range(8):
                layer = Linear(f"fc_{i}", synthetic_linear_weights(4, 8, rng))
                model = QuantizedModel(f"m{i}", [layer], input_shape=(8,))
                model.calibrate(np.abs(rng.normal(0, 1, size=(16, 8))))
                registry.register("tenant", model)
                server.infer("tenant", inputs, timeout=30)
                registry.unregister("tenant")
                # One single-noiseless-layer model => at most one live lock
                # (the churned models' locks are pruned, not accumulated).
                assert len(server._executor_locks) <= 1

    def test_server_restarts_after_stop(self, registry, rng):
        inputs = np.abs(rng.normal(0, 1, size=(2, 16)))
        direct = registry.engine("mlp").run(inputs)
        server = InferenceServer(registry)
        with server:
            server.infer("mlp", inputs, timeout=30)
        with server:  # restart gets a fresh queue, not a dead scheduler
            assert np.array_equal(server.infer("mlp", inputs, timeout=30), direct)

    def test_shared_executors_across_names_are_serialised(self, registry, rng):
        # Registering one model under two names shares its pooled executors;
        # concurrent batches for both names must not race on executor state
        # (the vectorized executor keeps a per-call phase-sums scratch field).
        registry.register("mlp_twin", registry.model("mlp"))
        assert (
            registry.engine("mlp_twin").executors["fc1"]
            is registry.engine("mlp").executors["fc1"]
        )
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        direct = registry.engine("mlp").run(inputs)
        with InferenceServer(registry, max_workers=4) as server:
            futures = [
                server.submit(name, inputs)
                for _ in range(6)
                for name in ("mlp", "mlp_twin")
            ]
            for future in futures:
                assert np.array_equal(future.result(timeout=30), direct)

    def test_future_timeout(self, registry):
        server = InferenceServer(registry)  # never started
        future = server.submit("mlp", np.zeros((1, 16)))
        assert not future.done()
        with pytest.raises(TimeoutError):
            future.result(timeout=0.01)
