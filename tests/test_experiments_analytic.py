"""Tests for the analytic (cost-model-driven) experiment harnesses."""

import pytest

from repro.experiments.fig01_breakdown import format_fig01, run_fig01
from repro.experiments.fig12_efficiency import format_fig12, run_fig12
from repro.experiments.fig13_retraining import format_fig13, run_fig13
from repro.experiments.fig14_ablation import (
    ablation_architectures,
    format_fig14,
    run_fig14,
)
from repro.experiments.runner import ExperimentResult, format_table, geomean
from repro.experiments.table1_slicing import format_table1, run_table1
from repro.experiments.table2_titanium import (
    format_table2,
    run_table2,
    run_titanium_tradeoff_sweep,
)
from repro.experiments.table3_prior import format_table3, run_table3


class TestRunnerHelpers:
    def test_geomean(self):
        assert geomean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geomean_rejects_non_positive(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])
        with pytest.raises(ValueError):
            geomean([])

    def test_format_table_alignment(self):
        text = format_table(("a", "b"), [("x", 1.0), ("yy", 2.5)])
        assert "a" in text and "yy" in text

    def test_experiment_result_rows(self):
        result = ExperimentResult(name="t", headers=("a", "b"))
        result.add_row(1, 2)
        assert result.column("b") == [2]
        with pytest.raises(ValueError):
            result.add_row(1)


class TestFig01:
    def test_isaac_is_adc_dominated(self):
        result = run_fig01("resnet18")
        assert result.adc_fraction > 0.5
        assert result.crossbar_energy_per_mac_fj < 150

    def test_format(self):
        assert "ADC" in format_fig01(
            run_fig01("shufflenetv2")
        ) or "adc" in format_fig01(run_fig01("shufflenetv2"))


class TestTable1:
    def test_four_options(self):
        rows = run_table1()
        assert len(rows) == 4

    def test_tradeoff_matches_paper(self):
        rows = {(r.sliced_input, r.sliced_weight): r for r in run_table1()}
        unsliced = rows[(False, False)]
        fully_sliced = rows[(True, True)]
        assert unsliced.bits_per_mac == 4 and unsliced.converts_per_mac == 1
        assert fully_sliced.bits_per_mac == 1 and fully_sliced.converts_per_mac == 4

    def test_format(self):
        assert "converts/MAC" in format_table1(run_table1())


class TestTable2:
    def test_terms_for_all_architectures(self):
        result = run_table2("shufflenetv2")
        assert len(result.terms) == 4
        assert "Titanium" in format_table2(result)

    def test_raella_has_lowest_adc_energy(self):
        result = run_table2("shufflenetv2")
        by_name = {t.arch_name: t for t in result.terms}
        assert by_name["raella"].adc_energy_uj < by_name["isaac"].adc_energy_uj

    def test_tradeoff_sweep_shows_coupling(self):
        sweep = run_titanium_tradeoff_sweep("shufflenetv2", adc_bits=(6, 7, 8))
        # Lower resolution -> cheaper converts but more converts per MAC.
        assert sweep[0].energy_per_convert_pj < sweep[-1].energy_per_convert_pj
        assert sweep[0].converts_per_mac > sweep[-1].converts_per_mac


class TestFig12:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig12(model_names=("resnet18", "shufflenetv2", "bert_large_ffn"))

    def test_efficiency_gains_in_paper_ballpark(self, result):
        for row in result.rows:
            assert 1.5 < row.efficiency_gain < 8.0

    def test_throughput_extremes_match_paper_shape(self, result):
        by_name = {r.model_name: r for r in result.rows}
        assert by_name["shufflenetv2"].throughput_gain < 1.0
        assert by_name["bert_large_ffn"].throughput_gain > 2.0

    def test_geomeans_positive(self, result):
        assert result.geomean_efficiency_gain > 1.0
        assert result.geomean_throughput_gain > 0.5

    def test_format(self, result):
        assert "geomean" in format_fig12(result)


class TestFig13:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig13()

    def test_raella_beats_isaac_and_forms_efficiency(self, result):
        entries = {e.arch_name: e for e in result.entries}
        assert result.relative_efficiency(entries["raella"]) > 2.0
        assert result.relative_efficiency(
            entries["raella"]
        ) > result.relative_efficiency(entries["forms8"])

    def test_no_spec_wins_at_65nm(self, result):
        entries = {e.arch_name: e for e in result.entries}
        assert result.relative_efficiency(
            entries["raella_65nm_no_spec"]
        ) >= result.relative_efficiency(entries["raella_65nm"])

    def test_raella_65nm_competitive_with_timely(self, result):
        entries = {e.arch_name: e for e in result.entries}
        best_raella = max(
            result.relative_efficiency(entries["raella_65nm"]),
            result.relative_efficiency(entries["raella_65nm_no_spec"]),
        )
        assert best_raella >= result.relative_efficiency(entries["timely"]) * 0.95

    def test_format(self, result):
        assert "retrains" in format_fig13(result)


class TestFig14:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig14(model_names=("resnet18", "resnet50"))

    def test_four_setups(self, result):
        assert len(result.setup_names) == 4
        assert result.setup_names[0] == "isaac"

    def test_each_strategy_reduces_converts_per_mac(self, result):
        means = [result.mean_converts_per_mac(s) for s in result.setup_names]
        assert means == sorted(means, reverse=True)

    def test_total_energy_decreases_vs_isaac(self, result):
        for model in result.model_names:
            for setup in result.setup_names[1:]:
                assert result.energy_reduction_vs_isaac(setup, model) > 1.5

    def test_ablation_architecture_names(self):
        names = [arch.name for arch in ablation_architectures()]
        assert names[0] == "isaac" and names[-1] == "raella"

    def test_format(self, result):
        assert "converts/MAC" in format_fig14(result)


class TestTable3:
    def test_raella_row_is_clean(self):
        rows = {r.name: r for r in run_table3()}
        raella = rows["raella"]
        assert not raella.high_cost_adc
        assert not raella.needs_retraining
        assert raella.fidelity_loss == "low"

    def test_isaac_pays_adc_cost_but_needs_no_retraining(self):
        rows = {r.name: r for r in run_table3()}
        assert rows["isaac"].high_cost_adc and not rows["isaac"].needs_retraining

    def test_retraining_architectures_marked(self):
        rows = {r.name: r for r in run_table3()}
        assert rows["forms8"].needs_retraining
        assert rows["timely"].needs_retraining

    def test_format_lists_all_rows(self):
        text = format_table3(run_table3())
        for name in ("isaac", "raella", "timely", "prime"):
            assert name in text
