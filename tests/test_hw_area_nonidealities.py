"""Tests for the area model and analog non-ideality analysis."""

import pytest

from repro.analog.devices import CellType
from repro.analog.nonidealities import analyze_column_current, sneak_current_bound
from repro.hw.architecture import ISAAC_ARCH, RAELLA_ARCH
from repro.hw.area import AreaModel


class TestAreaModel:
    def test_tile_area_positive_components(self):
        breakdown = AreaModel(RAELLA_ARCH).tile_area()
        assert breakdown.total_mm2 > 0
        assert breakdown.adcs_mm2 > 0
        assert breakdown.crossbars_mm2 > 0
        assert 0 < breakdown.fraction("adcs_mm2") < 1

    def test_raella_tiles_are_larger_than_isaac_tiles(self):
        raella_tile = AreaModel(RAELLA_ARCH).tile_area().total_mm2
        isaac_tile = AreaModel(ISAAC_ARCH).tile_area().total_mm2
        assert raella_tile > isaac_tile

    def test_fewer_raella_tiles_fit_the_budget(self):
        raella_tiles = AreaModel(RAELLA_ARCH).tiles_for_budget(600.0)
        isaac_tiles = AreaModel(ISAAC_ARCH).tiles_for_budget(600.0)
        # Paper: 743 RAELLA tiles vs 1024 ISAAC tiles under 600 mm^2.
        assert raella_tiles < isaac_tiles

    def test_chip_area_scales_with_tiles(self):
        model = AreaModel(RAELLA_ARCH)
        assert model.chip_area_mm2(10) == pytest.approx(
            10 * model.tile_area().total_mm2
        )

    def test_budget_validation(self):
        with pytest.raises(ValueError):
            AreaModel(RAELLA_ARCH).tiles_for_budget(0.0)

    def test_2t2r_overhead_is_modest(self):
        overhead = AreaModel(RAELLA_ARCH).cell_area_overhead_vs_1t1r()
        # Paper: the 2T2R cells increase system area by only ~10%.
        assert 0.0 < overhead < 0.5

    def test_1t1r_architecture_has_no_overhead(self):
        assert AreaModel(ISAAC_ARCH).cell_area_overhead_vs_1t1r() == 0.0

    def test_adc_area_smaller_for_raella_7b(self):
        raella = AreaModel(RAELLA_ARCH).tile_area()
        per_adc_raella = raella.adcs_mm2 / (
            RAELLA_ARCH.crossbars_per_tile * RAELLA_ARCH.adcs_per_crossbar
        )
        isaac = AreaModel(ISAAC_ARCH).tile_area()
        per_adc_isaac = isaac.adcs_mm2 / (
            ISAAC_ARCH.crossbars_per_tile * ISAAC_ARCH.adcs_per_crossbar
        )
        assert per_adc_raella < per_adc_isaac


class TestColumnCurrent:
    def test_raella_column_current_bounded_by_adc_saturation(self):
        # RAELLA's ADC saturates at 64, i.e. fewer than five fully-on devices.
        analysis = analyze_column_current("raella", rows=512, max_column_sum=64)
        assert analysis.max_devices_conducting == pytest.approx(64 / 15)
        assert analysis.max_devices_conducting < 5

    def test_isaac_like_column_carries_far_more_current(self):
        raella = analyze_column_current("raella", rows=512, max_column_sum=64)
        isaac = analyze_column_current("isaac", rows=128, max_column_sum=128 * 3)
        assert isaac.worst_case_current_ma > raella.worst_case_current_ma

    def test_relative_ir_drop_is_fraction_of_read_voltage(self):
        analysis = analyze_column_current("raella", rows=512, max_column_sum=64)
        assert 0 <= analysis.relative_ir_drop < 1

    def test_validation(self):
        with pytest.raises(ValueError):
            analyze_column_current("x", rows=0, max_column_sum=64)
        with pytest.raises(ValueError):
            analyze_column_current("x", rows=8, max_column_sum=-1)


class TestSneakCurrent:
    def test_2t2r_has_zero_sneak_current(self):
        assert sneak_current_bound(CellType.TWO_T_TWO_R, rows=512) == 0.0

    def test_1t1r_sneak_grows_with_rows(self):
        small = sneak_current_bound(CellType.ONE_T_ONE_R, rows=128)
        large = sneak_current_bound(CellType.ONE_T_ONE_R, rows=512)
        assert large > small > 0

    def test_validation(self):
        with pytest.raises(ValueError):
            sneak_current_bound(CellType.ONE_T_ONE_R, rows=0)
        with pytest.raises(ValueError):
            sneak_current_bound(CellType.ONE_T_ONE_R, rows=8, off_device_fraction=2.0)
