"""Cross-module property-based tests (hypothesis)."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic.slicing import Slicing, enumerate_slicings
from repro.core.center_offset import (
    CenterOffsetEncoder,
    WeightEncoding,
    optimal_center,
)
from repro.core.dynamic_input import (
    InputSlicePlan,
    SpeculationMode,
    extract_input_slice,
)
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.nn.layers import Linear, TensorQuant

slicing_strategy = st.sampled_from(
    [Slicing((4, 4)), Slicing((4, 2, 2)), Slicing((2, 2, 2, 2)), Slicing((3, 3, 2))]
)

code_matrix_strategy = st.integers(min_value=0, max_value=10_000).map(
    lambda seed: np.random.default_rng(seed).integers(0, 256, size=(24, 3))
)


class TestEncodingProperties:
    @given(code_matrix_strategy, slicing_strategy)
    @settings(max_examples=25, deadline=None)
    def test_center_offset_encoding_roundtrips(self, codes, slicing):
        encoder = CenterOffsetEncoder(slicing, WeightEncoding.CENTER_OFFSET)
        encoded = encoder.encode(codes)
        assert np.array_equal(encoded.reconstruct_codes(), codes)

    @given(code_matrix_strategy, slicing_strategy)
    @settings(max_examples=25, deadline=None)
    def test_unsigned_encoding_roundtrips(self, codes, slicing):
        encoder = CenterOffsetEncoder(slicing, WeightEncoding.UNSIGNED)
        encoded = encoder.encode(codes)
        assert np.array_equal(encoded.reconstruct_codes(), codes)

    @given(code_matrix_strategy, slicing_strategy)
    @settings(max_examples=25, deadline=None)
    def test_slice_values_respect_device_range(self, codes, slicing):
        encoded = CenterOffsetEncoder(slicing).encode(codes)
        for i, width in enumerate(slicing.widths):
            assert encoded.positive_slices[i].max() < (1 << width)
            assert encoded.negative_slices[i].max() < (1 << width)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=20, deadline=None)
    def test_optimal_center_never_worse_than_midpoint(self, seed):
        rng = np.random.default_rng(seed)
        codes = rng.integers(0, 256, size=128)
        slicing = Slicing((4, 2, 2))
        from repro.core.center_offset import _slice_column_cost

        center = optimal_center(codes, slicing)
        assert _slice_column_cost(codes - center, slicing, 4.0) <= _slice_column_cost(
            codes - 128, slicing, 4.0
        )


class TestInputPlanProperties:
    @given(
        st.sampled_from([Slicing((4, 2, 2)), Slicing((2, 2, 2, 2)), Slicing((4, 4))])
    )
    @settings(max_examples=20, deadline=None)
    def test_speculative_plans_cover_all_bits_once(self, spec_slicing):
        plan = InputSlicePlan.build(speculative_slicing=spec_slicing)
        spec_bits = set()
        recovery_bits = set()
        for phase in plan.phases:
            bits = set(range(phase.shift, phase.shift + phase.width))
            if phase.kind == "speculative":
                assert not (spec_bits & bits)
                spec_bits |= bits
            else:
                assert not (recovery_bits & bits)
                recovery_bits |= bits
        assert spec_bits == set(range(8))
        assert recovery_bits == set(range(8))

    @given(st.lists(st.integers(min_value=0, max_value=255), min_size=1, max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_serial_slices_reassemble_inputs(self, values):
        plan = InputSlicePlan.build(mode=SpeculationMode.BIT_SERIAL)
        arr = np.asarray(values)
        total = sum(extract_input_slice(arr, p) << p.shift for p in plan.phases)
        assert np.array_equal(total, arr)


class TestExecutorProperties:
    @given(
        st.integers(min_value=0, max_value=10_000),
        st.sampled_from([s for s in enumerate_slicings(8, 4) if s.n_slices <= 4]),
    )
    @settings(max_examples=15, deadline=None)
    def test_wide_adc_execution_is_exact_for_any_slicing(self, seed, slicing):
        rng = np.random.default_rng(seed)
        layer = Linear("prop_fc", rng.normal(0, 0.2, size=(3, 12)), fuse_relu=True)
        inputs = np.abs(rng.normal(0, 1, size=(12, 12)))
        layer.calibrate(inputs, layer.forward_float(inputs))
        patches = layer.input_quant.quantize(inputs)
        executor = PimLayerExecutor(
            layer, PimLayerConfig(adc_bits=16, weight_slicing=slicing)
        )
        assert np.allclose(executor.matmul(patches), patches @ layer.weight_codes)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_narrow_adc_error_is_bounded_by_saturation_distance(self, seed):
        rng = np.random.default_rng(seed)
        layer = Linear("prop_fc2", rng.normal(0, 0.15, size=(4, 16)), fuse_relu=True)
        inputs = np.abs(rng.normal(0, 1, size=(8, 16)))
        layer.calibrate(inputs, layer.forward_float(inputs))
        patches = layer.input_quant.quantize(inputs)
        executor = PimLayerExecutor(layer, PimLayerConfig(adc_bits=7))
        approx = executor.matmul(patches)
        exact = patches @ layer.weight_codes
        # The executor can only under-estimate magnitudes (saturation clamps
        # toward the ADC bounds); errors never exceed the exact magnitude.
        assert np.all(np.abs(approx) <= np.abs(exact) + 64 * 255)


class TestTensorQuantProperties:
    @given(
        st.floats(min_value=0.001, max_value=5.0),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=40, deadline=None)
    def test_quantize_is_idempotent_on_grid(self, scale, zero_point):
        quant = TensorQuant(scale=scale, zero_point=zero_point)
        codes = np.arange(0, 256, 15)
        values = quant.dequantize(codes)
        assert np.array_equal(quant.quantize(values), codes)


class TestCompiledPlanPhaseProperties:
    """The compiled plan's index tables vs the reference slice extraction.

    :class:`~repro.runtime.plan.CompiledLayerPlan` freezes phase extraction
    into explicit shift/mask tables; these must reproduce
    :func:`~repro.runtime.phases.extract_phase_tensor` -- itself pinned to
    stacking :func:`extract_input_slice` -- element for element, for every
    slicing and speculation mode, or the planned fast path silently feeds
    wrong DAC values.
    """

    phase_slicing_strategy = st.sampled_from(
        [Slicing((4, 2, 2)), Slicing((4, 4)), Slicing((2, 2, 2, 2)), Slicing((3, 3, 2))]
    )
    mode_strategy = st.sampled_from(
        [SpeculationMode.SPECULATIVE, SpeculationMode.BIT_SERIAL]
    )

    @staticmethod
    def _build_plan(mode, slicing):
        if mode is SpeculationMode.BIT_SERIAL:
            return InputSlicePlan.build(mode=mode, serial_slicing=slicing)
        return InputSlicePlan.build(mode=mode, speculative_slicing=slicing)

    @given(
        st.integers(min_value=0, max_value=10_000),
        phase_slicing_strategy,
        mode_strategy,
    )
    @settings(max_examples=20, deadline=None)
    def test_compiled_tables_match_extract_phase_tensor(self, seed, slicing, mode):
        from repro.runtime.phases import extract_phase_tensor
        from repro.runtime.plan import CompiledLayerPlan
        from repro.runtime.vectorized import VectorizedLayerExecutor

        rng = np.random.default_rng(seed)
        layer = Linear("prop_plan_fc", rng.normal(0, 0.15, size=(4, 12)))
        inputs = np.abs(rng.normal(0, 1, size=(6, 12)))
        layer.calibrate(inputs, layer.forward_float(inputs))
        config = (
            PimLayerConfig(speculation=mode, serial_input_slicing=slicing)
            if mode is SpeculationMode.BIT_SERIAL
            else PimLayerConfig(speculation=mode, speculative_input_slicing=slicing)
        )
        compiled = CompiledLayerPlan.from_executor(
            VectorizedLayerExecutor(layer, config)
        )
        codes = rng.integers(0, 256, size=(6, 12))
        expected = extract_phase_tensor(codes, compiled.input_plan)
        assert np.array_equal(compiled.extract_phases(codes), expected)

    @given(
        st.integers(min_value=0, max_value=10_000),
        phase_slicing_strategy,
        mode_strategy,
    )
    @settings(max_examples=20, deadline=None)
    def test_tables_match_per_phase_slice_extraction(self, seed, slicing, mode):
        plan = self._build_plan(mode, slicing)
        codes = np.random.default_rng(seed).integers(0, 256, size=(5, 9))
        shifts = np.array([phase.shift for phase in plan.phases], dtype=np.int64)
        masks = np.array(
            [(1 << phase.width) - 1 for phase in plan.phases], dtype=np.int64
        )
        tabled = (codes[np.newaxis, :, :] >> shifts[:, None, None]) & (
            masks[:, None, None]
        )
        stacked = np.stack([extract_input_slice(codes, phase) for phase in plan.phases])
        assert np.array_equal(tabled, stacked)
        # Every input bit is consumed exactly once by the plan's phases
        # (recovery phases re-read speculative bits, which double-counts by
        # design in speculative mode).
        if mode is SpeculationMode.BIT_SERIAL:
            reassembled = (tabled << shifts[:, None, None]).sum(axis=0)
            assert np.array_equal(reassembled, codes)
