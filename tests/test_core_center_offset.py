"""Tests for Center+Offset encoding and the Eq. 2 center optimisation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic.slicing import Slicing
from repro.core.center_offset import (
    CenterOffsetEncoder,
    WeightEncoding,
    compute_offsets,
    optimal_center,
    optimal_centers,
)


class TestComputeOffsets:
    def test_offsets_reconstruct_difference(self):
        codes = np.array([[10, 200], [128, 0]])
        centers = np.array([100, 50])
        plus, minus = compute_offsets(codes, centers)
        assert np.array_equal(plus - minus, codes - centers[np.newaxis, :])

    def test_offsets_are_nonnegative_and_exclusive(self):
        codes = np.array([[10], [200]])
        plus, minus = compute_offsets(codes, np.array([100]))
        assert plus.min() >= 0 and minus.min() >= 0
        assert np.all((plus == 0) | (minus == 0))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            compute_offsets(np.zeros(4, dtype=int), np.zeros(1, dtype=int))
        with pytest.raises(ValueError):
            compute_offsets(np.zeros((4, 2), dtype=int), np.zeros(3, dtype=int))


class TestOptimalCenter:
    def test_symmetric_filter_centers_near_mean(self, rng):
        codes = np.clip(np.round(rng.normal(128, 20, size=400)), 0, 255).astype(int)
        center = optimal_center(codes, Slicing((4, 2, 2)))
        assert abs(center - 128) < 15

    def test_skewed_filter_center_tracks_distribution(self, rng):
        codes = np.clip(np.round(rng.normal(80, 15, size=400)), 0, 255).astype(int)
        center = optimal_center(codes, Slicing((4, 2, 2)))
        assert 60 <= center <= 100

    def test_center_within_candidate_range(self, rng):
        codes = rng.integers(0, 256, size=100)
        center = optimal_center(codes, Slicing((4, 4)))
        assert 1 <= center <= 255

    def test_center_reduces_eq2_cost_vs_zero_point(self, rng):
        from repro.core.center_offset import _slice_column_cost

        codes = np.clip(np.round(rng.normal(90, 25, size=512)), 0, 255).astype(int)
        slicing = Slicing((4, 2, 2))
        center = optimal_center(codes, slicing)
        cost_opt = _slice_column_cost(codes - center, slicing, 4.0)
        cost_zero_point = _slice_column_cost(codes - 128, slicing, 4.0)
        assert cost_opt <= cost_zero_point

    def test_rejects_empty_filter(self):
        with pytest.raises(ValueError):
            optimal_center(np.array([], dtype=int), Slicing((4, 4)))

    def test_custom_candidates_respected(self, rng):
        codes = rng.integers(0, 256, size=64)
        center = optimal_center(codes, Slicing((4, 4)), candidates=np.array([42]))
        assert center == 42


class TestOptimalCenters:
    def test_matches_per_filter_optimisation(self, rng):
        codes = rng.integers(0, 256, size=(64, 5))
        slicing = Slicing((4, 2, 2))
        batched = optimal_centers(codes, slicing)
        individual = [optimal_center(codes[:, i], slicing) for i in range(5)]
        assert np.array_equal(batched, individual)

    def test_chunking_does_not_change_result(self, rng):
        codes = rng.integers(0, 256, size=(32, 9))
        slicing = Slicing((4, 4))
        assert np.array_equal(
            optimal_centers(codes, slicing),
            optimal_centers(codes, slicing, max_chunk_elements=1000),
        )

    def test_different_filters_get_different_centers(self, rng):
        low = np.clip(np.round(rng.normal(60, 10, size=(256, 1))), 0, 255)
        high = np.clip(np.round(rng.normal(200, 10, size=(256, 1))), 0, 255)
        codes = np.concatenate([low, high], axis=1).astype(int)
        centers = optimal_centers(codes, Slicing((4, 2, 2)))
        assert centers[0] < centers[1]

    def test_rejects_non_2d(self, rng):
        with pytest.raises(ValueError):
            optimal_centers(rng.integers(0, 256, size=16), Slicing((4, 4)))


class TestCenterOffsetEncoder:
    def _codes(self, rng, rows=48, filters=6):
        return np.clip(
            np.round(rng.normal(120, 30, size=(rows, filters))), 0, 255
        ).astype(int)

    def test_center_offset_roundtrip(self, rng):
        codes = self._codes(rng)
        encoder = CenterOffsetEncoder(Slicing((4, 2, 2)))
        encoded = encoder.encode(codes)
        assert np.array_equal(encoded.reconstruct_codes(), codes)

    def test_zero_offset_uses_zero_points_as_centers(self, rng):
        codes = self._codes(rng)
        zero_points = rng.integers(50, 200, size=codes.shape[1])
        encoder = CenterOffsetEncoder(Slicing((4, 4)), WeightEncoding.ZERO_OFFSET)
        encoded = encoder.encode(codes, zero_points)
        assert np.array_equal(encoded.centers, zero_points)
        assert np.array_equal(encoded.reconstruct_codes(), codes)

    def test_zero_offset_requires_zero_points(self, rng):
        encoder = CenterOffsetEncoder(Slicing((4, 4)), WeightEncoding.ZERO_OFFSET)
        with pytest.raises(ValueError):
            encoder.encode(self._codes(rng))

    def test_unsigned_encoding_has_no_negative_slices(self, rng):
        codes = self._codes(rng)
        encoder = CenterOffsetEncoder(Slicing((2, 2, 2, 2)), WeightEncoding.UNSIGNED)
        encoded = encoder.encode(codes)
        assert np.all(encoded.negative_slices == 0)
        assert np.all(encoded.centers == 0)
        assert np.array_equal(encoded.reconstruct_codes(), codes)

    def test_slice_values_fit_device_range(self, rng):
        codes = self._codes(rng)
        encoded = CenterOffsetEncoder(Slicing((4, 2, 2))).encode(codes)
        for i, width in enumerate((4, 2, 2)):
            assert encoded.positive_slices[i].max() < (1 << width)
            assert encoded.negative_slices[i].max() < (1 << width)

    def test_column_counts(self, rng):
        codes = self._codes(rng, rows=20, filters=7)
        encoded = CenterOffsetEncoder(Slicing((4, 2, 2))).encode(codes)
        assert encoded.rows == 20
        assert encoded.n_filters == 7
        assert encoded.n_columns == 21

    def test_center_offset_balances_column_sums(self, rng):
        # A skewed filter: Center+Offset should produce much smaller
        # per-column slice sums than Zero+Offset (differential).
        codes = np.clip(np.round(rng.normal(90, 20, size=(512, 1))), 0, 255).astype(int)
        zero_point = np.array([128])
        slicing = Slicing((2, 2, 2, 2))
        center = CenterOffsetEncoder(slicing, WeightEncoding.CENTER_OFFSET).encode(
            codes, zero_point
        )
        zero = CenterOffsetEncoder(slicing, WeightEncoding.ZERO_OFFSET).encode(
            codes, zero_point
        )

        def worst_column_bias(encoded):
            diff = encoded.positive_slices - encoded.negative_slices
            return np.abs(diff.sum(axis=1)).max()

        assert worst_column_bias(center) < worst_column_bias(zero)

    def test_rejects_out_of_range_codes(self, rng):
        encoder = CenterOffsetEncoder(Slicing((4, 4)))
        with pytest.raises(ValueError):
            encoder.encode(np.array([[256]]))
        with pytest.raises(ValueError):
            encoder.encode(np.array([[-1]]))

    def test_devices_programmed_counts_nonzero(self, rng):
        codes = np.array([[100, 100]])
        encoded = CenterOffsetEncoder(Slicing((4, 4))).encode(codes)
        assert encoded.devices_programmed >= 0


class TestEncodingProperties:
    @given(
        st.integers(min_value=0, max_value=255), st.integers(min_value=1, max_value=255)
    )
    @settings(max_examples=60, deadline=None)
    def test_offset_identity(self, code, center):
        plus, minus = compute_offsets(np.array([[code]]), np.array([center]))
        assert plus[0, 0] - minus[0, 0] == code - center
        assert plus[0, 0] >= 0 and minus[0, 0] >= 0
