"""Tests for the functional (simulation-driven) experiment harnesses.

These use deliberately small settings (few inputs, few samples) so that the
full experiment code paths run quickly; the benchmark suite runs them at the
paper's scale.
"""

import numpy as np
import pytest

from repro.experiments.fig03_column_sums import format_fig03, run_fig03
from repro.experiments.fig05_encoding import format_fig05, run_fig05
from repro.experiments.fig07_slicings import format_fig07, run_fig07
from repro.experiments.fig08_densities import format_fig08, run_fig08
from repro.nn.zoo import mobilenetv2_like


class TestFig03:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig03(
            model=mobilenetv2_like(seed=0),
            layer_index=2,
            n_inputs=1,
            max_samples=50_000,
        )

    def test_four_setups(self, result):
        assert len(result.setups) == 4

    def test_each_strategy_tightens_distribution(self, result):
        fractions = [s.within_adc_fraction(s.primary_kind) for s in result.setups]
        # Baseline (unsigned 4b/4b) is worst; later setups only improve.
        assert fractions[0] < fractions[1] <= fractions[2] + 1e-9
        assert fractions[3] >= fractions[1]

    def test_final_fidelity_loss_is_small(self, result):
        assert result.setups[-1].fidelity_loss_rate < 0.05

    def test_recovery_distribution_tighter_than_speculative(self, result):
        final = result.setups[-1]
        assert final.within_adc_fraction("recovery") >= final.within_adc_fraction(
            "speculative"
        ) - 1e-9

    def test_resolution_bits_positive(self, result):
        bits = result.setups[0].resolution_bits()
        assert bits.min() >= 1

    def test_format(self, result):
        assert "7b fraction" in format_fig03(result)


class TestFig05:
    @pytest.fixture(scope="class")
    def comparisons(self):
        return run_fig05(n_weights=256, n_inputs=32, seed=0)

    def test_two_encodings(self, comparisons):
        assert {c.encoding for c in comparisons} == {"zero_offset", "center_offset"}

    def test_center_offset_balances_slices(self, comparisons):
        by_name = {c.encoding: c for c in comparisons}
        assert abs(by_name["center_offset"].mean_slice_value) < abs(
            by_name["zero_offset"].mean_slice_value
        )

    def test_center_offset_reduces_saturation(self, comparisons):
        by_name = {c.encoding: c for c in comparisons}
        assert by_name["center_offset"].saturation_rate < by_name[
            "zero_offset"
        ].saturation_rate

    def test_zero_offset_column_sums_biased_negative(self, comparisons):
        by_name = {c.encoding: c for c in comparisons}
        assert by_name["zero_offset"].mean_column_sum < by_name[
            "center_offset"
        ].mean_column_sum

    def test_format(self, comparisons):
        assert "saturation" in format_fig05(comparisons)


class TestFig07:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig07(
            model_names=("mobilenetv2",), max_test_patches=64, n_test_inputs=1
        )

    def test_every_layer_has_a_slicing(self, result):
        model = result.models[0]
        assert len(model.per_layer) > 0
        assert all(sum(widths) == 8 for widths in model.per_layer.values())

    def test_last_layer_most_conservative(self, result):
        model = result.models[0]
        last = list(model.per_layer.values())[-1]
        assert last == (1,) * 8

    def test_modal_slice_count_is_small(self, result):
        assert result.models[0].modal_slice_count <= 4

    def test_histogram_counts_layers(self, result):
        model = result.models[0]
        assert sum(model.slice_count_histogram.values()) == len(model.per_layer)

    def test_format(self, result):
        assert "slices/weight" in format_fig07(result)


class TestFig08:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig08(n_inputs=1)

    def test_density_arrays_are_probability_vectors(self, result):
        for density in (
            result.input_bit_density,
            result.weight_code_bit_density,
            result.offset_bit_density,
        ):
            assert density.shape == (8,)
            assert np.all((density >= 0) & (density <= 1))

    def test_inputs_have_sparse_high_bits(self, result):
        assert result.high_order_input_density < 0.35

    def test_offsets_sparser_than_raw_codes_in_high_bits(self, result):
        assert result.high_order_offset_density < result.high_order_weight_code_density

    def test_format(self, result):
        assert "bit" in format_fig08(result)
