"""Thread-safety regression tests for the runtime caches under serving load.

The multi-tenant server registers models and serves batches from several
threads against one :class:`~repro.runtime.ExecutorPool` and one
:class:`~repro.runtime.EncodedWeightCache`.  These tests hammer both from
thread barriers and assert the invariants the serving layer relies on: one
build per key, consistent LRU bookkeeping, and no lost or duplicated entries.
"""

import threading
from concurrent.futures import ThreadPoolExecutor

import numpy as np
import pytest

from repro.arithmetic.slicing import Slicing
from repro.core.executor import PimLayerConfig
from repro.nn.layers import Linear
from repro.nn.synthetic import synthetic_linear_weights
from repro.runtime import EncodedWeightCache, ExecutorPool, NetworkEngine
from repro.serve import ModelRegistry

N_THREADS = 8


def run_in_threads(worker, n_threads=N_THREADS):
    """Run ``worker(index)`` on a barrier start across threads; re-raise errors."""
    barrier = threading.Barrier(n_threads)

    def wrapped(index):
        barrier.wait()
        return worker(index)

    with ThreadPoolExecutor(max_workers=n_threads) as pool:
        futures = [pool.submit(wrapped, i) for i in range(n_threads)]
        return [future.result(timeout=30) for future in futures]


@pytest.fixture
def slicings():
    """Distinct weight slicings, each a distinct encoding-cache key."""
    return [Slicing(w) for w in [(4, 2, 2), (2, 2, 2, 2), (4, 4), (1,) * 8]]


class TestEncodedWeightCacheConcurrency:
    def test_same_key_builds_once(self, tiny_linear_layer):
        cache = EncodedWeightCache()
        config = PimLayerConfig()
        builds = []

        def builder():
            builds.append(threading.get_ident())
            return ["chunks"]

        results = run_in_threads(
            lambda i: cache.encoded_chunks(tiny_linear_layer, config, builder)
        )
        assert len(builds) == 1
        assert cache.misses == 1 and cache.hits == N_THREADS - 1
        assert all(result is results[0] for result in results)

    def test_distinct_keys_all_land(self, tiny_linear_layer, slicings):
        cache = EncodedWeightCache()
        configs = [PimLayerConfig(weight_slicing=s) for s in slicings]

        def worker(index):
            config = configs[index % len(configs)]
            return cache.encoded_chunks(
                tiny_linear_layer, config, lambda: [index % len(configs)]
            )

        run_in_threads(worker)
        assert cache.misses == len(configs)
        assert len(cache) == len(configs)

    def test_lru_eviction_stays_bounded_under_contention(
        self, tiny_linear_layer, slicings
    ):
        cache = EncodedWeightCache(max_entries=2)
        configs = [PimLayerConfig(weight_slicing=s) for s in slicings]

        def worker(index):
            for round_index in range(25):
                config = configs[(index + round_index) % len(configs)]
                chunks = cache.encoded_chunks(
                    tiny_linear_layer, config, lambda: ["entry"]
                )
                assert chunks == ["entry"]

        run_in_threads(worker)
        assert len(cache) <= 2
        assert cache.hits + cache.misses == N_THREADS * 25


class TestExecutorPoolConcurrency:
    def test_same_key_yields_one_executor(self, tiny_linear_layer):
        pool = ExecutorPool(weight_cache=None)
        executors = run_in_threads(
            lambda i: pool.get(tiny_linear_layer, PimLayerConfig())
        )
        assert len(pool) == 1
        assert all(executor is executors[0] for executor in executors)

    def test_distinct_configs_yield_distinct_executors(
        self, tiny_linear_layer, slicings
    ):
        pool = ExecutorPool(weight_cache=None)

        def worker(index):
            slicing = slicings[index % len(slicings)]
            return pool.get(tiny_linear_layer, PimLayerConfig(weight_slicing=slicing))

        executors = run_in_threads(worker)
        assert len(pool) == len(slicings)
        assert len({id(e) for e in executors}) == len(slicings)

    def test_concurrent_engine_builds_share_executors(self, tiny_mlp_model):
        pool = ExecutorPool(weight_cache=None)
        engines = run_in_threads(
            lambda i: NetworkEngine.build(tiny_mlp_model, pool=pool)
        )
        assert len(pool) == len(tiny_mlp_model.matmul_layers())
        first = engines[0]
        for engine in engines[1:]:
            for name, executor in engine.executors.items():
                assert executor is first.executors[name]


class TestRegistryConcurrency:
    def test_concurrent_tenant_registration(self, rng):
        registry = ModelRegistry()
        models = []
        for index in range(N_THREADS):
            from repro.nn.model import QuantizedModel

            layer = Linear(f"fc_{index}", synthetic_linear_weights(4, 8, rng))
            model = QuantizedModel(f"model_{index}", [layer], input_shape=(8,))
            model.calibrate(np.abs(rng.normal(0, 1, size=(16, 8))))
            models.append(model)

        run_in_threads(lambda i: registry.register(f"tenant_{i}", models[i]))
        assert len(registry) == N_THREADS
        assert len(registry.pool) == N_THREADS
        # Every tenant still serves correct results after the stampede.
        inputs = np.abs(rng.normal(0, 1, size=(2, 8)))
        for index in range(N_THREADS):
            outputs = registry.engine(f"tenant_{index}").run(inputs)
            assert outputs.shape == (2, 4)
