"""Tests for the baseline accelerator models."""

import numpy as np
import pytest

from repro.baselines.forms import FormsBaseline
from repro.baselines.isaac import IsaacBaseline
from repro.baselines.timely import TimelyBaseline
from repro.baselines.zero_offset import zero_offset_compiler_config, zero_offset_config
from repro.core.center_offset import WeightEncoding
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerExecutor
from repro.nn.zoo import model_shapes


class TestIsaacBaseline:
    def test_pim_config_is_unsigned_bit_serial(self):
        config = IsaacBaseline().pim_config()
        assert config.weight_encoding == WeightEncoding.UNSIGNED
        assert config.speculation == SpeculationMode.BIT_SERIAL
        assert not config.adc_signed
        assert config.crossbar_rows == 128

    def test_lossless_adc_widens_clip_range(self):
        baseline = IsaacBaseline()
        lossless = baseline.pim_config(lossless_adc=True)
        hard = baseline.pim_config(lossless_adc=False)
        assert lossless.adc_bits > hard.adc_bits
        assert hard.adc_bits == 8

    def test_functional_config_is_exact_without_noise(
        self, tiny_linear_layer, tiny_patches
    ):
        executor = PimLayerExecutor(tiny_linear_layer, IsaacBaseline().pim_config())
        assert np.allclose(
            executor.matmul(tiny_patches), tiny_patches @ tiny_linear_layer.weight_codes
        )

    def test_energy_and_throughput_positive(self):
        baseline = IsaacBaseline()
        shapes = model_shapes("shufflenetv2")
        assert baseline.energy(shapes).total_uj > 0
        assert baseline.throughput(shapes).throughput_samples_per_s > 0


class TestFormsBaseline:
    def test_pruning_metadata(self):
        baseline = FormsBaseline()
        assert baseline.pruning_factor == pytest.approx(2.0)
        assert baseline.requires_retraining

    def test_reported_accuracy_drops(self):
        baseline = FormsBaseline()
        assert baseline.reported_accuracy_drop("resnet18") == pytest.approx(0.62)
        assert baseline.reported_accuracy_drop("vgg") is None

    def test_pruning_reduces_energy_vs_isaac(self):
        shapes = model_shapes("resnet18")
        assert (
            FormsBaseline().energy(shapes).total_uj
            < IsaacBaseline().energy(shapes).total_uj
        )


class TestTimelyBaseline:
    def test_metadata(self):
        baseline = TimelyBaseline()
        assert baseline.requires_retraining
        assert baseline.reported_accuracy_drop("resnet50") == pytest.approx(0.1)

    def test_fidelity_loss_in_bits(self):
        baseline = TimelyBaseline()
        assert baseline.lsbs_dropped(24) == 16

    def test_energy_positive_and_cheaper_than_isaac(self):
        shapes = model_shapes("resnet18")
        assert 0 < TimelyBaseline().energy(shapes).total_uj < IsaacBaseline().energy(
            shapes
        ).total_uj


class TestZeroOffsetBaseline:
    def test_config_switches_encoding_only(self):
        config = zero_offset_config()
        assert config.weight_encoding == WeightEncoding.ZERO_OFFSET
        assert config.crossbar_rows == 512  # everything else stays RAELLA

    def test_compiler_config_disables_adaptive_slicing(self):
        config = zero_offset_compiler_config()
        assert not config.adaptive_slicing_enabled
        assert config.pim.weight_encoding == WeightEncoding.ZERO_OFFSET
