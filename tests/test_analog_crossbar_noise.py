"""Tests for the crossbar model, devices and noise models."""

import numpy as np
import pytest

from repro.analog.crossbar import Crossbar, CrossbarConfig
from repro.analog.devices import DEFAULT_RERAM, CellType, ReRAMDevice
from repro.analog.noise import GaussianColumnNoise, NoiselessModel


class TestReRAMDevice:
    def test_default_levels(self):
        assert DEFAULT_RERAM.levels == 16
        assert DEFAULT_RERAM.max_slice_value == 15

    def test_conductance_monotonic_in_level(self):
        conductances = [DEFAULT_RERAM.conductance_for_level(v) for v in range(16)]
        assert all(b > a for a, b in zip(conductances, conductances[1:]))

    def test_conductance_bounds(self):
        assert DEFAULT_RERAM.conductance_for_level(0) == pytest.approx(
            DEFAULT_RERAM.g_off_s
        )
        assert DEFAULT_RERAM.conductance_for_level(15) == pytest.approx(
            DEFAULT_RERAM.g_on_s
        )

    def test_rejects_out_of_range_level(self):
        with pytest.raises(ValueError):
            DEFAULT_RERAM.conductance_for_level(16)

    def test_supports_slice_bits(self):
        assert DEFAULT_RERAM.supports_slice_bits(4)
        assert not DEFAULT_RERAM.supports_slice_bits(5)

    def test_rejects_invalid_parameters(self):
        with pytest.raises(ValueError):
            ReRAMDevice(bits_per_device=6)
        with pytest.raises(ValueError):
            ReRAMDevice(r_on_ohm=10, r_off_ohm=5)

    def test_cell_type_properties(self):
        assert CellType.TWO_T_TWO_R.devices_per_cell == 2
        assert CellType.TWO_T_TWO_R.signed
        assert CellType.ONE_T_ONE_R.devices_per_cell == 1
        assert not CellType.ONE_T_ONE_R.signed


class TestNoiseModels:
    def test_noiseless_returns_difference(self):
        model = NoiselessModel()
        assert np.array_equal(model.apply(np.array([5.0]), np.array([2.0])), [3.0])

    def test_zero_level_gaussian_is_ideal(self):
        model = GaussianColumnNoise(level=0.0, seed=0)
        assert np.array_equal(model.apply(np.array([5.0]), np.array([2.0])), [3.0])

    def test_noise_std_scales_with_activity(self):
        model = GaussianColumnNoise(level=0.1, seed=0)
        big = model.apply(np.full(20_000, 10_000.0), np.zeros(20_000)) - 10_000.0
        small = model.apply(np.full(20_000, 100.0), np.zeros(20_000)) - 100.0
        assert np.std(big) > 5 * np.std(small)

    def test_noise_is_unbiased(self):
        model = GaussianColumnNoise(level=0.1, seed=1)
        samples = model.apply(np.full(50_000, 400.0), np.zeros(50_000))
        assert abs(samples.mean() - 400.0) < 0.5

    def test_reproducible_with_seed(self):
        a = GaussianColumnNoise(level=0.1, seed=7).apply(
            np.full(10, 100.0), np.zeros(10)
        )
        b = GaussianColumnNoise(level=0.1, seed=7).apply(
            np.full(10, 100.0), np.zeros(10)
        )
        assert np.array_equal(a, b)

    def test_reseed_changes_draws(self):
        model = GaussianColumnNoise(level=0.1, seed=7)
        a = model.apply(np.full(10, 100.0), np.zeros(10))
        model.reseed(8)
        b = model.apply(np.full(10, 100.0), np.zeros(10))
        assert not np.array_equal(a, b)

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            GaussianColumnNoise(level=-0.1)


class TestCrossbar:
    def _programmed(self, rows=8, cols=4, signed=True):
        config = CrossbarConfig(
            rows=16,
            cols=8,
            cell_type=CellType.TWO_T_TWO_R if signed else CellType.ONE_T_ONE_R,
        )
        crossbar = Crossbar(config=config)
        rng = np.random.default_rng(0)
        positive = rng.integers(0, 16, size=(rows, cols))
        negative = rng.integers(0, 16, size=(rows, cols)) if signed else None
        crossbar.program(positive, negative)
        return crossbar, positive, (negative if signed else np.zeros_like(positive))

    def test_config_device_counts(self):
        config = CrossbarConfig(rows=4, cols=4, cell_type=CellType.TWO_T_TWO_R)
        assert config.n_cells == 16
        assert config.n_devices == 32

    def test_compute_matches_integer_dot_product(self):
        crossbar, positive, negative = self._programmed()
        inputs = np.random.default_rng(1).integers(0, 16, size=(3, 8))
        result = crossbar.compute(inputs)
        assert np.array_equal(result.column_sums, inputs @ (positive - negative))

    def test_activity_tracks_positive_and_negative(self):
        crossbar, positive, negative = self._programmed()
        inputs = np.ones((1, 8), dtype=int)
        result = crossbar.compute(inputs)
        assert result.total_activity == pytest.approx(positive.sum() + negative.sum())

    def test_input_pulses_counted(self):
        crossbar, _, _ = self._programmed()
        inputs = np.full((2, 8), 3, dtype=int)
        assert crossbar.compute(inputs).input_pulses == 48

    def test_unprogrammed_crossbar_raises(self):
        with pytest.raises(RuntimeError):
            Crossbar().compute(np.zeros((1, 4), dtype=int))

    def test_program_rejects_oversized_matrix(self):
        crossbar = Crossbar(CrossbarConfig(rows=4, cols=4))
        with pytest.raises(ValueError):
            crossbar.program(np.zeros((8, 2), dtype=int))

    def test_program_rejects_out_of_range_values(self):
        crossbar = Crossbar(CrossbarConfig(rows=4, cols=4))
        with pytest.raises(ValueError):
            crossbar.program(np.full((2, 2), 99))

    def test_1t1r_rejects_negative_slices(self):
        crossbar = Crossbar(
            CrossbarConfig(rows=4, cols=4, cell_type=CellType.ONE_T_ONE_R)
        )
        with pytest.raises(ValueError):
            crossbar.program(np.ones((2, 2), dtype=int), np.ones((2, 2), dtype=int))

    def test_compute_rejects_negative_inputs(self):
        crossbar, _, _ = self._programmed()
        with pytest.raises(ValueError):
            crossbar.compute(np.full((1, 8), -1))

    def test_compute_rejects_wrong_width(self):
        crossbar, _, _ = self._programmed()
        with pytest.raises(ValueError):
            crossbar.compute(np.zeros((1, 5), dtype=int))

    def test_programming_energy_counts_nonzero_devices(self):
        crossbar = Crossbar(CrossbarConfig(rows=4, cols=4))
        crossbar.program(np.array([[1, 0], [0, 2]]), np.array([[0, 3], [0, 0]]))
        expected = 3 * crossbar.config.device.write_energy_pj
        assert crossbar.programming_energy_pj == pytest.approx(expected)

    def test_noisy_crossbar_perturbs_sums(self):
        config = CrossbarConfig(rows=32, cols=4)
        crossbar = Crossbar(config=config, noise=GaussianColumnNoise(0.2, seed=3))
        rng = np.random.default_rng(2)
        positive = rng.integers(0, 16, size=(32, 4))
        crossbar.program(positive, np.zeros_like(positive))
        inputs = rng.integers(0, 16, size=(8, 32))
        noisy = crossbar.compute(inputs).column_sums
        assert not np.array_equal(noisy, inputs @ positive)
