"""Energy-aware heterogeneous fleet routing (`repro.serve.fleet`).

Covers the registry's fleet grouping, the routing objectives, the
:class:`FleetRouter`'s decision evidence (including backlog spill and the
no-engine-on-the-decision-path guarantee), the server integration
(bit-identical outputs, deadline-aware placement, telemetry counters and
``route`` spans), and the zero-loss drain when a variant is unregistered
with batches in flight on it.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.hw import ISAAC_ARCH, RAELLA_ARCH
from repro.serve import (
    BatchingPolicy,
    FleetRouter,
    InferenceServer,
    MinimizeEnergy,
    MinimizeLatency,
    ModelRegistry,
    PinVariant,
)
from repro.serve.fleet import VariantSnapshot
from repro.telemetry import TelemetryCollector, Tracer

FAST, CHEAP = "mlp-fast", "mlp-lowpower"


@pytest.fixture
def fleet_registry(tiny_mlp_model):
    """Two architecture variants of one calibrated model, grouped as "mlp".

    ISAAC is the fast/expensive variant, RAELLA the slow/cheap one (about
    55% less modeled energy per sample) -- the same trade-off the paper's
    fig. 12/13 quantify.
    """
    registry = ModelRegistry()
    registry.register(FAST, tiny_mlp_model, arch=ISAAC_ARCH)
    registry.register(CHEAP, tiny_mlp_model, arch=RAELLA_ARCH)
    registry.register_fleet("mlp", [FAST, CHEAP])
    yield registry
    registry.close()


def snapshot(name, *, energy=None, latency=None, idle=None, n=4, backlog=0):
    return VariantSnapshot(
        name=name,
        n_samples=n,
        backlog_samples=backlog,
        predicted_latency_s=latency,
        idle_latency_s=latency if idle is None else idle,
        energy_pj=energy,
    )


class TestRegistryFleets:
    def test_register_and_lookup(self, fleet_registry):
        assert fleet_registry.is_fleet("mlp")
        assert not fleet_registry.is_fleet(FAST)
        assert fleet_registry.fleet_variants("mlp") == (FAST, CHEAP)
        assert fleet_registry.fleet_variants(FAST) is None
        assert fleet_registry.fleets() == {"mlp": (FAST, CHEAP)}
        # The fleet resolves to a servable model but hosts no engine.
        assert fleet_registry.model("mlp") is fleet_registry.model(FAST)
        assert "mlp" not in fleet_registry
        assert "mlp" not in fleet_registry.names()
        with pytest.raises(KeyError):
            fleet_registry.engine("mlp")

    def test_tenant_labels(self, fleet_registry, tiny_mlp_model):
        assert fleet_registry.tenant("mlp") == "mlp"
        fleet_registry.register(
            "mlp-extra", tiny_mlp_model, arch=RAELLA_ARCH, tenant="acme"
        )
        fleet_registry.register_fleet("mlp2", ["mlp-extra"], tenant="acme")
        assert fleet_registry.tenant("mlp2") == "acme"
        assert fleet_registry.tenants()["mlp2"] == "acme"

    def test_validation(self, fleet_registry, tiny_conv_model):
        with pytest.raises(ValueError, match="at least one variant"):
            fleet_registry.register_fleet("empty", [])
        with pytest.raises(ValueError, match="duplicate"):
            fleet_registry.register_fleet("dup", [FAST, FAST])
        with pytest.raises(ValueError, match="already registered"):
            fleet_registry.register_fleet(FAST, [CHEAP])
        with pytest.raises(ValueError, match="already registered"):
            fleet_registry.register_fleet("mlp", [FAST])
        with pytest.raises(ValueError, match="no model registered"):
            fleet_registry.register_fleet("ghost", ["missing"])
        with pytest.raises(ValueError, match="do not nest"):
            fleet_registry.register_fleet("nested", ["mlp"])
        fleet_registry.register("conv", tiny_conv_model)
        with pytest.raises(ValueError, match="input shape"):
            fleet_registry.register_fleet("mixed", [FAST, "conv"])

    def test_unregister_fleet_name_keeps_variants(self, fleet_registry):
        assert fleet_registry.unregister("mlp") is True
        assert not fleet_registry.is_fleet("mlp")
        assert FAST in fleet_registry and CHEAP in fleet_registry
        assert fleet_registry.unregister("mlp") is False

    def test_unregister_variant_prunes_fleet(self, fleet_registry):
        generation = fleet_registry.generation
        assert fleet_registry.unregister(FAST) is True
        assert fleet_registry.fleet_variants("mlp") == (CHEAP,)
        assert fleet_registry.generation > generation
        # The last variant takes the emptied fleet with it.
        assert fleet_registry.unregister(CHEAP) is True
        assert not fleet_registry.is_fleet("mlp")
        assert fleet_registry.fleets() == {}

    def test_close_drops_fleets(self, tiny_mlp_model):
        registry = ModelRegistry()
        registry.register(FAST, tiny_mlp_model)
        registry.register_fleet("mlp", [FAST])
        registry.close()
        assert registry.fleets() == {}


class TestRoutingObjectives:
    def test_snapshot_meets_semantics(self):
        candidate = snapshot("a", latency=0.5)
        assert candidate.meets(None)  # no deadline: nothing to violate
        assert candidate.meets(1.0)
        assert not candidate.meets(0.1)
        # No prediction: cannot be proven unmeetable, stays eligible.
        assert snapshot("b").meets(0.1)
        assert snapshot("a", energy=8.0, n=4).energy_per_sample_pj == 2.0
        assert snapshot("a", n=4).energy_per_sample_pj is None

    def test_minimize_energy_prefers_cheapest_feasible(self):
        fast = snapshot("fast", energy=100.0, latency=0.01)
        cheap = snapshot("cheap", energy=40.0, latency=0.05)
        chosen, reason = MinimizeEnergy().choose([fast, cheap], 1.0)
        assert chosen is cheap and "feasible" in reason
        # Tight slack excludes the cheap variant.
        chosen, _reason = MinimizeEnergy().choose([fast, cheap], 0.02)
        assert chosen is fast
        # No deadline: cheapest outright.
        chosen, reason = MinimizeEnergy().choose([fast, cheap], None)
        assert chosen is cheap and "no deadline" in reason

    def test_minimize_energy_least_late_fallback_and_ties(self):
        fast = snapshot("fast", energy=100.0, latency=0.01)
        cheap = snapshot("cheap", energy=40.0, latency=0.05)
        chosen, reason = MinimizeEnergy().choose([fast, cheap], 0.001)
        assert chosen is fast and "no variant" in reason
        # Equal energy ties break on latency, then name -- deterministic.
        a = snapshot("a", energy=40.0, latency=0.05)
        b = snapshot("b", energy=40.0, latency=0.05)
        assert MinimizeEnergy().choose([b, a], None)[0] is a

    def test_minimize_latency_budget(self):
        fast = snapshot("fast", energy=400.0, latency=0.01)  # 100 pJ/sample
        cheap = snapshot("cheap", energy=40.0, latency=0.05)  # 10 pJ/sample
        assert MinimizeLatency().choose([fast, cheap], None)[0] is fast
        budgeted = MinimizeLatency(energy_budget_pj_per_sample=50.0)
        assert budgeted.choose([fast, cheap], None)[0] is cheap
        # Every variant over budget: cheapest wins instead.
        strict = MinimizeLatency(energy_budget_pj_per_sample=1.0)
        chosen, reason = strict.choose([fast, cheap], None)
        assert chosen is cheap and "budget" in reason
        with pytest.raises(ValueError):
            MinimizeLatency(energy_budget_pj_per_sample=0.0)

    def test_pin_variant_and_fallback(self):
        fast = snapshot("fast", energy=100.0, latency=0.01)
        cheap = snapshot("cheap", energy=40.0, latency=0.05)
        assert PinVariant("cheap").choose([fast, cheap], None)[0] is cheap
        chosen, reason = PinVariant("gone").choose([fast, cheap], None)
        assert chosen is fast and "unavailable" in reason


class TestFleetRouter:
    def test_route_decision_evidence(self, fleet_registry):
        router = FleetRouter(fleet_registry)
        decision = router.route("mlp", 8)
        assert decision.fleet == "mlp"
        assert decision.variant == CHEAP  # cheapest, no deadline
        assert decision.baseline_variant == FAST  # lowest idle latency
        assert decision.rejected == (FAST,)
        assert decision.predicted_saved_pj > 0
        assert {c.name for c in decision.candidates} == {FAST, CHEAP}
        assert decision.objective == "min_energy"

    def test_backlog_spills_to_other_variant(self, fleet_registry):
        """A saturated cheap variant spills work to the fast one."""
        router = FleetRouter(fleet_registry)
        cost = fleet_registry.cost_model(CHEAP)
        # Slack that fits the cheap variant idle but not behind a backlog.
        slack = cost.batch_latency_s(8) * 2
        now = time.monotonic()
        idle = router.route("mlp", 8, deadline_s=now + slack, now=now)
        assert idle.variant == CHEAP
        loaded = router.route(
            "mlp", 8, deadline_s=now + slack, now=now, backlog={CHEAP: 10_000}
        )
        assert loaded.variant == FAST
        by_name = {c.name: c for c in loaded.candidates}
        assert by_name[CHEAP].backlog_samples == 10_000
        assert by_name[CHEAP].predicted_latency_s > slack

    def test_unmeetable_deadline_takes_least_late(self, fleet_registry):
        router = FleetRouter(fleet_registry)
        now = time.monotonic()
        decision = router.route("mlp", 8, deadline_s=now - 1.0, now=now)
        assert decision.variant == FAST
        assert "no variant meets" in decision.reason

    def test_route_touches_no_engine(self, fleet_registry, monkeypatch):
        """The decision path is table lookups only -- O(us), engine-free."""

        def boom(name):
            raise AssertionError("engine touched on the routing decision path")

        monkeypatch.setattr(fleet_registry, "engine", boom)
        decision = FleetRouter(fleet_registry).route("mlp", 8)
        assert decision.variant == CHEAP

    def test_unknown_and_emptied_fleet(self, fleet_registry, monkeypatch):
        router = FleetRouter(fleet_registry)
        with pytest.raises(KeyError):
            router.route("nope", 4)
        # Simulate the unregister race: the fleet tuple still names a
        # variant whose engine (and cost tables) are already gone.
        monkeypatch.setattr(fleet_registry, "fleet_variants", lambda name: ("ghost",))
        with pytest.raises(LookupError):
            router.route("mlp", 4)

    def test_calibrated_predictions_preferred(self, fleet_registry):
        telemetry = TelemetryCollector()
        for name in (FAST, CHEAP):
            telemetry.attach_cost_model(name, fleet_registry.cost_model(name))
        # Observed wall time is 1000x the modeled time on the fast variant:
        # its calibrated prediction must reflect that.
        modeled = fleet_registry.cost_model(FAST).batch_latency_s(8)
        telemetry.record_engine_run(FAST, 8, modeled * 1000)
        router = FleetRouter(fleet_registry, telemetry)
        by_name = {c.name: c for c in router.snapshot("mlp", 8)}
        assert by_name[FAST].predicted_latency_s == pytest.approx(modeled * 1000)
        assert by_name[CHEAP].predicted_latency_s == pytest.approx(
            fleet_registry.cost_model(CHEAP).batch_latency_s(8)
        )


class TestFleetServing:
    def drain(self, server, submits):
        """Submit everything first, then start: deterministic batching."""
        decisions = [server.submit(*args, **kwargs) for args, kwargs in submits]
        with server:
            results = [d.result(timeout=10.0) for d in decisions]
        return results

    def test_routed_outputs_bit_identical(self, fleet_registry, rng):
        telemetry = TelemetryCollector()
        server = InferenceServer(
            fleet_registry,
            BatchingPolicy(max_batch_size=8, max_delay_s=0.001),
            telemetry=telemetry,
        )
        inputs = rng.normal(0.0, 1.0, size=(4, 16))
        results = self.drain(server, [(("mlp", inputs), {}) for _ in range(4)])
        reference = fleet_registry.engine(CHEAP).run(inputs)
        for result in results:
            np.testing.assert_array_equal(result, reference)
        aggregate = telemetry.fleet_aggregate("mlp")
        assert aggregate.batches_routed > 0
        assert aggregate.samples_routed == 16
        assert set(aggregate.executed_batches_by_variant) == {CHEAP}
        assert aggregate.realised_saved_pj > 0
        assert 0.0 < aggregate.realised_saved_fraction < 1.0

    def test_deadline_places_on_fast_variant(self, fleet_registry, rng):
        """Slackless work lands on the fast variant, loose work on the cheap one."""
        server = InferenceServer(
            fleet_registry,
            BatchingPolicy(max_batch_size=4, max_delay_s=0.0),
            telemetry=TelemetryCollector(),
        )
        inputs = rng.normal(0.0, 1.0, size=(4, 16))
        with server:
            # 1us of slack is long gone by formation time: least-late = fast.
            tight = server.submit("mlp", inputs, deadline_s=1e-6)
            tight.result(timeout=10.0)
            loose = server.submit("mlp", inputs, deadline_s=30.0)
            loose.result(timeout=10.0)
        per_model = server.statistics().batches_per_model
        assert per_model.get(FAST, 0) >= 1
        assert per_model.get(CHEAP, 0) >= 1

    def test_pinned_fleet_matches_direct_serving(self, fleet_registry, rng):
        """Any fixed routing decision is bit-identical to single-variant serving."""
        inputs = [rng.normal(0.0, 1.0, size=(n, 16)) for n in (1, 3, 2, 4)]
        policy = BatchingPolicy(max_batch_size=8, max_delay_s=0.001)
        routed_server = InferenceServer(
            fleet_registry, policy, routing=PinVariant(FAST)
        )
        routed = self.drain(routed_server, [(("mlp", x), {}) for x in inputs])
        direct_server = InferenceServer(fleet_registry, policy)
        direct = self.drain(direct_server, [((FAST, x), {}) for x in inputs])
        for routed_out, direct_out in zip(routed, direct):
            np.testing.assert_array_equal(routed_out, direct_out)

    def test_route_span_records_choice_and_alternatives(self, fleet_registry, rng):
        telemetry = TelemetryCollector()
        tracer = Tracer(sample_rate=1.0)
        server = InferenceServer(
            fleet_registry,
            BatchingPolicy(max_batch_size=4, max_delay_s=0.001),
            telemetry=telemetry,
            tracer=tracer,
        )
        inputs = rng.normal(0.0, 1.0, size=(2, 16))
        self.drain(server, [(("mlp", inputs), {})])
        (trace,) = telemetry.traces()
        (route_span,) = [s for s in trace.spans if s["name"] == "route"]
        assert route_span["attrs"]["variant"] == CHEAP
        assert route_span["attrs"]["rejected"] == [FAST]
        assert route_span["attrs"]["objective"] == "min_energy"
        assert route_span["attrs"]["rerouted"] is False

    def test_fleet_aware_latency_predictor(self, fleet_registry):
        telemetry = TelemetryCollector()
        server = InferenceServer(fleet_registry, telemetry=telemetry)
        for name in (FAST, CHEAP):
            telemetry.attach_cost_model(name, fleet_registry.cost_model(name))
        predictor = server._latency_predictor()
        best = min(
            telemetry.predicted_batch_latency_s(FAST, 8),
            telemetry.predicted_batch_latency_s(CHEAP, 8),
        )
        assert predictor("mlp", 8) == pytest.approx(best)
        assert predictor(FAST, 8) == pytest.approx(
            telemetry.predicted_batch_latency_s(FAST, 8)
        )

    def test_fleet_submit_validates_shape(self, fleet_registry, rng):
        with InferenceServer(fleet_registry) as server:
            with pytest.raises(ValueError, match="shape"):
                server.submit("mlp", rng.normal(0.0, 1.0, size=(2, 7)))

    def test_prometheus_fleet_families(self, fleet_registry, rng):
        telemetry = TelemetryCollector()
        server = InferenceServer(
            fleet_registry,
            BatchingPolicy(max_batch_size=8, max_delay_s=0.001),
            telemetry=telemetry,
        )
        inputs = rng.normal(0.0, 1.0, size=(2, 16))
        self.drain(server, [(("mlp", inputs), {}) for _ in range(2)])
        text = telemetry.to_prometheus()
        assert "# TYPE repro_fleet_routed_batches_total counter" in text
        sample = f'repro_fleet_routed_batches_total{{fleet="mlp",variant="{CHEAP}"}}'
        assert sample in text
        assert "# TYPE repro_fleet_realised_energy_saved_ratio gauge" in text
        exported = telemetry.export_json()
        assert '"fleets"' in exported


class TestUnregisterVariantMidFlight:
    def test_inflight_batches_drain_to_remaining_variant(self, fleet_registry, rng):
        """Unregistering a variant with batches in flight loses zero requests.

        Mirrors the replica-pool SIGKILL tests: all traffic is pinned onto
        the fast variant, its engine is blocked mid-batch with a follow-up
        batch already dispatched behind it, then the variant is
        unregistered.  The blocked batch completes on the engine object it
        already holds; the queued batch re-routes onto the surviving
        variant.  Every future must deliver bit-identical outputs.
        """
        telemetry = TelemetryCollector()
        engine = fleet_registry.engine(FAST)
        original_run = engine.run
        first_run_started = threading.Event()
        release = threading.Event()
        calls = []

        def gated_run(inputs, **kwargs):
            calls.append(len(inputs))
            if len(calls) == 1:
                first_run_started.set()
                assert release.wait(timeout=10.0)
            return original_run(inputs, **kwargs)

        engine.run = gated_run
        inputs = rng.normal(0.0, 1.0, size=(4, 16))
        reference = original_run(inputs)
        server = InferenceServer(
            fleet_registry,
            BatchingPolicy(max_batch_size=4, max_delay_s=0.0),
            max_workers=1,
            telemetry=telemetry,
            routing=PinVariant(FAST),
        )
        with server:
            first = server.submit("mlp", inputs)
            assert first_run_started.wait(timeout=10.0)
            # The single worker is blocked inside the fast engine, so this
            # batch is formed, routed to the fast variant, and parked in
            # its dispatch queue.
            second = server.submit("mlp", inputs)
            deadline = time.monotonic() + 10.0
            while telemetry.fleet_aggregate("mlp").batches_routed < 2:
                assert time.monotonic() < deadline, "second batch never routed"
                time.sleep(0.005)
            assert fleet_registry.unregister(FAST) is True
            assert fleet_registry.fleet_variants("mlp") == (CHEAP,)
            release.set()
            np.testing.assert_array_equal(first.result(timeout=10.0), reference)
            np.testing.assert_array_equal(second.result(timeout=10.0), reference)
        stats = server.statistics()
        assert stats.requests_failed == 0
        assert stats.requests_completed == 2
        aggregate = telemetry.fleet_aggregate("mlp")
        assert aggregate.reroutes == 1
        assert aggregate.executed_batches_by_variant.get(FAST) == 1
        assert aggregate.executed_batches_by_variant.get(CHEAP) == 1
        # Decision-time placement chose the fast variant twice; execution
        # realised one batch on each -- the predicted-vs-realised split the
        # savings gauges expose.
        assert aggregate.decisions_by_variant[FAST] == 2
        assert aggregate.decisions_by_variant[CHEAP] == 1

    def test_emptied_fleet_fails_requests_without_hanging(self, tiny_mlp_model, rng):
        """With every variant gone the batch fails cleanly (no silent hang)."""
        registry = ModelRegistry()
        engine = registry.register("only", tiny_mlp_model, arch=RAELLA_ARCH)
        registry.register_fleet("mlp", ["only"])
        original_run = engine.run
        run_started = threading.Event()
        release = threading.Event()
        calls = []

        def gated_run(inputs, **kwargs):
            calls.append(len(inputs))
            if len(calls) == 1:
                run_started.set()
                assert release.wait(timeout=10.0)
            return original_run(inputs, **kwargs)

        engine.run = gated_run
        inputs = rng.normal(0.0, 1.0, size=(2, 16))
        server = InferenceServer(
            registry,
            BatchingPolicy(max_batch_size=2, max_delay_s=0.0),
            max_workers=1,
        )
        with server:
            first = server.submit("mlp", inputs)
            assert run_started.wait(timeout=10.0)
            second = server.submit("mlp", inputs)
            deadline = time.monotonic() + 10.0
            while "only" not in server._dispatch or not server._dispatch["only"]:
                assert time.monotonic() < deadline, "second batch never dispatched"
                time.sleep(0.005)
            registry.unregister("only")
            release.set()
            np.testing.assert_array_equal(
                first.result(timeout=10.0), original_run(inputs)
            )
            with pytest.raises(KeyError):
                second.result(timeout=10.0)
        registry.close()
