"""Tests for the QuantizedModel container."""

import numpy as np
import pytest

from repro.nn.layers import Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_linear_weights


class TestModelStructure:
    def test_output_shape_propagation(self, tiny_conv_model):
        assert tiny_conv_model.output_shape == (5,)

    def test_matmul_layers_in_order(self, tiny_conv_model):
        names = [layer.name for layer in tiny_conv_model.matmul_layers()]
        assert names == ["c1", "c2", "fc"]

    def test_layer_input_shapes(self, tiny_conv_model):
        shapes = tiny_conv_model.layer_input_shapes()
        assert shapes["c1"] == (3, 8, 8)
        assert shapes["c2"] == (4, 8, 8)
        assert shapes["fc"] == (6,)

    def test_total_macs_and_weights(self, tiny_mlp_model):
        assert tiny_mlp_model.total_weights() == 16 * 12 + 12 * 4
        assert tiny_mlp_model.total_macs() == 16 * 12 + 12 * 4

    def test_get_layer(self, tiny_mlp_model):
        assert tiny_mlp_model.get_layer("fc1").name == "fc1"
        with pytest.raises(KeyError):
            tiny_mlp_model.get_layer("missing")

    def test_rejects_empty_layer_list(self):
        with pytest.raises(ValueError):
            QuantizedModel("empty", [], input_shape=(4,))

    def test_rejects_inconsistent_shapes(self, rng):
        layers = [
            Linear("a", synthetic_linear_weights(4, 8, rng)),
            Linear("b", synthetic_linear_weights(4, 5, rng)),
        ]
        with pytest.raises(ValueError):
            QuantizedModel("bad", layers, input_shape=(8,))


class TestCalibrationAndExecution:
    def test_is_calibrated(self, tiny_mlp_model):
        assert tiny_mlp_model.is_calibrated

    def test_uncalibrated_model_refuses_quantized_inference(self, rng):
        model = QuantizedModel(
            "m", [Linear("fc", synthetic_linear_weights(2, 4, rng))], input_shape=(4,)
        )
        with pytest.raises(RuntimeError):
            model.forward_quantized(np.zeros((1, 4)))

    def test_quantized_close_to_float(self, tiny_mlp_model, rng):
        x = np.abs(rng.normal(0, 1, size=(16, 16)))
        float_out = tiny_mlp_model.forward_float(x)
        quant_out = tiny_mlp_model.forward_quantized(x)
        scale = max(np.abs(float_out).max(), 1e-6)
        assert np.mean(np.abs(float_out - quant_out)) / scale < 0.1

    def test_return_codes_flag(self, tiny_mlp_model, rng):
        x = np.abs(rng.normal(0, 1, size=(4, 16)))
        codes = tiny_mlp_model.forward_quantized(x, return_codes=True)
        assert codes.dtype == np.int64

    def test_predict_matches_argmax(self, tiny_mlp_model, rng):
        x = np.abs(rng.normal(0, 1, size=(8, 16)))
        logits = tiny_mlp_model.forward_quantized(x)
        assert np.array_equal(tiny_mlp_model.predict(x), np.argmax(logits, axis=-1))

    def test_pim_hook_is_used_for_every_matmul_layer(self, tiny_mlp_model, rng):
        calls = []

        def hook(codes, layer):
            calls.append(layer.name)
            return codes @ layer.weight_codes

        x = np.abs(rng.normal(0, 1, size=(2, 16)))
        tiny_mlp_model.forward_quantized(x, pim_matmul=hook)
        assert calls == ["fc1", "fc2"]

    def test_exact_hook_reproduces_default_path(self, tiny_conv_model, rng):
        x = np.abs(rng.normal(0, 1, size=(2, 3, 8, 8)))
        ref = tiny_conv_model.forward_quantized(x)
        hooked = tiny_conv_model.forward_quantized(
            x, pim_matmul=lambda codes, layer: codes @ layer.weight_codes
        )
        assert np.array_equal(ref, hooked)


class TestCaptureLayerInputs:
    def test_captures_all_matmul_layers(self, tiny_conv_model, rng):
        x = np.abs(rng.normal(0, 1, size=(1, 3, 8, 8)))
        captured = tiny_conv_model.capture_layer_inputs(x)
        assert set(captured) == {"c1", "c2", "fc"}

    def test_patch_shapes(self, tiny_conv_model, rng):
        x = np.abs(rng.normal(0, 1, size=(1, 3, 8, 8)))
        captured = tiny_conv_model.capture_layer_inputs(x)
        assert captured["c1"].patch_codes.shape == (64, 27)
        assert captured["fc"].patch_codes.shape == (1, 6)

    def test_patch_codes_are_valid_uint8(self, tiny_conv_model, rng):
        x = np.abs(rng.normal(0, 1, size=(1, 3, 8, 8)))
        captured = tiny_conv_model.capture_layer_inputs(x)
        for activation in captured.values():
            assert activation.patch_codes.min() >= 0
            assert activation.patch_codes.max() <= 255

    def test_layer_name_filter(self, tiny_conv_model, rng):
        x = np.abs(rng.normal(0, 1, size=(1, 3, 8, 8)))
        captured = tiny_conv_model.capture_layer_inputs(x, layer_names=["c2"])
        assert set(captured) == {"c2"}


class TestSignedInputModel:
    def test_signed_input_quantization(self, rng):
        layer = Linear(
            "fc",
            synthetic_linear_weights(4, 8, rng),
            fuse_relu=False,
            signed_input=True,
        )
        model = QuantizedModel("signed", [layer], input_shape=(8,), signed_input=True)
        model.calibrate(rng.normal(0, 1, size=(32, 8)))
        assert model.input_quant.signed
        x = rng.normal(0, 1, size=(4, 8))
        captured = model.capture_layer_inputs(x)
        assert captured["fc"].patch_codes.min() < 0
