"""Tests for the mapper and the throughput model."""

import pytest

from repro.hw.architecture import ISAAC_ARCH, RAELLA_ARCH, RAELLA_NO_SPEC_ARCH
from repro.hw.mapping import Mapper
from repro.hw.throughput import ThroughputModel, ThroughputReport
from repro.nn.zoo import model_shapes


class TestMapper:
    def test_mapping_fits_chip(self):
        mapping = Mapper(RAELLA_ARCH).map(model_shapes("resnet18"))
        assert mapping.fits()
        assert 0 < mapping.crossbar_utilization <= 1

    def test_unreplicated_mapping_smaller_than_replicated(self):
        shapes = model_shapes("resnet18")
        bare = Mapper(RAELLA_ARCH).map(shapes, replicate=False)
        replicated = Mapper(RAELLA_ARCH).map(shapes, replicate=True)
        assert replicated.total_crossbars_used >= bare.total_crossbars_used

    def test_replication_improves_bottleneck(self):
        shapes = model_shapes("resnet18")
        bare = Mapper(RAELLA_ARCH).map(shapes, replicate=False)
        replicated = Mapper(RAELLA_ARCH).map(shapes, replicate=True)
        assert replicated.bottleneck.latency_cycles <= bare.bottleneck.latency_cycles

    def test_every_layer_is_mapped(self):
        shapes = model_shapes("mobilenetv2")
        mapping = Mapper(RAELLA_ARCH).map(shapes)
        assert len(mapping.layers) == shapes.n_layers

    def test_toeplitz_replication_only_for_small_conv_filters(self):
        shapes = model_shapes("resnet18")
        mapping = Mapper(RAELLA_ARCH).map(shapes, replicate=False)
        by_name = {m.layer_name: m for m in mapping.layers}
        assert by_name["conv1"].in_crossbar_replicas > 1  # K = 147 fits many copies
        assert by_name["fc"].in_crossbar_replicas == 1

    def test_no_toeplitz_support_disables_in_crossbar_replication(self):
        arch = RAELLA_ARCH.with_changes(supports_toeplitz=False)
        mapping = Mapper(arch).map(model_shapes("resnet18"), replicate=False)
        assert all(m.in_crossbar_replicas == 1 for m in mapping.layers)

    def test_isaac_needs_more_crossbars_than_raella(self):
        shapes = model_shapes("resnet50")
        isaac = Mapper(ISAAC_ARCH).map(shapes, replicate=False).total_crossbars_used
        raella = Mapper(RAELLA_ARCH).map(shapes, replicate=False).total_crossbars_used
        assert isaac > raella


class TestThroughputModel:
    def test_report_structure(self):
        report = ThroughputModel(RAELLA_ARCH).evaluate(model_shapes("resnet18"))
        assert report.throughput_samples_per_s > 0
        assert report.single_sample_latency_us >= report.steady_state_latency_us
        assert "samples/s" in report.summary()

    def test_raella_beats_isaac_on_large_models(self):
        shapes = model_shapes("resnet50")
        raella = ThroughputModel(RAELLA_ARCH).evaluate(shapes).throughput_samples_per_s
        isaac = ThroughputModel(ISAAC_ARCH).evaluate(shapes).throughput_samples_per_s
        assert raella > isaac

    def test_compact_models_favour_isaac(self):
        shapes = model_shapes("shufflenetv2")
        raella = ThroughputModel(RAELLA_ARCH).evaluate(shapes).throughput_samples_per_s
        isaac = ThroughputModel(ISAAC_ARCH).evaluate(shapes).throughput_samples_per_s
        assert raella < isaac

    def test_no_speculation_is_faster(self):
        shapes = model_shapes("resnet18")
        spec = ThroughputModel(RAELLA_ARCH).evaluate(shapes).throughput_samples_per_s
        no_spec = ThroughputModel(RAELLA_NO_SPEC_ARCH).evaluate(
            shapes
        ).throughput_samples_per_s
        assert no_spec > spec

    def test_bert_signed_inputs_halve_throughput(self):
        shapes = model_shapes("bert_large_ffn")
        report = ThroughputModel(RAELLA_ARCH).evaluate(shapes)
        # Signed inputs double cycles per presentation (22 vs 11).
        bottleneck = report.bottleneck
        assert bottleneck.latency_cycles > 0

    def test_latency_consistent_with_cycle_time(self):
        report = ThroughputModel(RAELLA_ARCH).evaluate(model_shapes("shufflenetv2"))
        timing = report.layer_timings[0]
        assert timing.latency_us == pytest.approx(
            timing.latency_cycles * RAELLA_ARCH.cycle_time_ns / 1e3
        )


class TestEmptyThroughputReport:
    """An empty report must fail loudly, not with a bare ``max()`` ValueError."""

    def _empty_report(self) -> ThroughputReport:
        return ThroughputReport(model_name="empty", arch_name="raella")

    @pytest.mark.parametrize(
        "accessor",
        [
            lambda r: r.bottleneck,
            lambda r: r.steady_state_latency_us,
            lambda r: r.throughput_samples_per_s,
            lambda r: r.single_sample_latency_us,
            lambda r: r.summary(),
        ],
        ids=[
            "bottleneck",
            "steady_state_latency_us",
            "throughput_samples_per_s",
            "single_sample_latency_us",
            "summary",
        ],
    )
    def test_empty_timings_raise_clear_error(self, accessor):
        with pytest.raises(ValueError, match="no layer timings"):
            accessor(self._empty_report())

    def test_populated_report_unaffected(self):
        report = ThroughputModel(RAELLA_ARCH).evaluate(model_shapes("resnet18"))
        assert report.bottleneck.latency_cycles > 0
        assert report.single_sample_latency_us > 0
