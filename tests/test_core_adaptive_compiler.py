"""Tests for Adaptive Weight Slicing, the compiler and the accelerator model."""

import numpy as np
import pytest

from repro.analog.noise import GaussianColumnNoise
from repro.arithmetic.slicing import Slicing
from repro.core.accelerator import RaellaAccelerator, statistics_to_energy
from repro.core.adaptive_slicing import (
    AdaptiveSlicingConfig,
    choose_weight_slicing,
    layer_output_error,
    quantized_layer_outputs,
)
from repro.core.center_offset import WeightEncoding
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.core.executor import PimLayerConfig
from repro.hw.architecture import RAELLA_ARCH


@pytest.fixture
def fast_adaptive_config() -> AdaptiveSlicingConfig:
    return AdaptiveSlicingConfig(max_test_patches=48)


@pytest.fixture
def fast_compiler_config(fast_adaptive_config) -> RaellaCompilerConfig:
    return RaellaCompilerConfig(adaptive=fast_adaptive_config, n_test_inputs=2)


class TestAdaptiveSlicingConfig:
    def test_candidate_count(self, fast_adaptive_config):
        assert len(fast_adaptive_config.candidate_slicings) == 108

    def test_most_conservative_slicing(self, fast_adaptive_config):
        assert fast_adaptive_config.most_conservative_slicing == Slicing((1,) * 8)

    def test_rejects_bad_budget(self):
        with pytest.raises(ValueError):
            AdaptiveSlicingConfig(error_budget=-1.0)

    def test_rejects_bad_patch_budget(self):
        with pytest.raises(ValueError):
            AdaptiveSlicingConfig(max_test_patches=0)


class TestErrorMeasurement:
    def test_quantized_outputs_shape(self, tiny_linear_layer, tiny_patches):
        out = quantized_layer_outputs(tiny_linear_layer, tiny_patches)
        assert out.shape == (tiny_patches.shape[0], tiny_linear_layer.out_features)

    def test_exact_execution_has_zero_error(self, tiny_linear_layer, tiny_patches):
        error = layer_output_error(
            tiny_linear_layer, tiny_patches, PimLayerConfig(adc_bits=16)
        )
        assert error == 0.0

    def test_error_grows_as_adc_narrows(self, tiny_linear_layer, tiny_patches):
        wide = layer_output_error(
            tiny_linear_layer, tiny_patches, PimLayerConfig(adc_bits=9)
        )
        narrow = layer_output_error(
            tiny_linear_layer, tiny_patches, PimLayerConfig(adc_bits=4)
        )
        assert narrow >= wide


class TestChooseWeightSlicing:
    def test_picks_fewest_slices_under_budget(
        self, tiny_linear_layer, tiny_patches, fast_adaptive_config
    ):
        choice = choose_weight_slicing(
            tiny_linear_layer, tiny_patches, config=fast_adaptive_config
        )
        assert choice.within_budget
        # A 24-row filter never saturates a 7b ADC, so the densest slicing wins.
        assert choice.slicing == Slicing((4, 4))

    def test_last_layer_is_conservative(
        self, tiny_linear_layer, tiny_patches, fast_adaptive_config
    ):
        choice = choose_weight_slicing(
            tiny_linear_layer,
            tiny_patches,
            config=fast_adaptive_config,
            is_last_layer=True,
        )
        assert choice.slicing == Slicing((1,) * 8)

    def test_tight_budget_forces_more_slices(self, rng):
        from repro.nn.layers import Linear
        from repro.nn.synthetic import synthetic_linear_weights

        weights = synthetic_linear_weights(4, 320, rng, std=0.08, mean_spread=0.02)
        layer = Linear("wide", weights, fuse_relu=True)
        inputs = np.abs(rng.normal(0, 1.0, size=(24, 320)))
        layer.calibrate(inputs, layer.forward_float(inputs))
        patches = layer.input_quant.quantize(inputs)
        loose = choose_weight_slicing(
            layer,
            patches,
            AdaptiveSlicingConfig(error_budget=10.0, max_test_patches=24),
        )
        tight = choose_weight_slicing(
            layer,
            patches,
            AdaptiveSlicingConfig(error_budget=0.02, max_test_patches=24),
        )
        assert tight.slicing.n_slices >= loose.slicing.n_slices

    def test_noise_aware_search_uses_more_slices(self, rng):
        from repro.nn.layers import Linear
        from repro.nn.synthetic import synthetic_linear_weights

        weights = synthetic_linear_weights(4, 256, rng, std=0.08)
        layer = Linear("noisy", weights, fuse_relu=True)
        inputs = np.abs(rng.normal(0, 1.0, size=(24, 256)))
        layer.calibrate(inputs, layer.forward_float(inputs))
        patches = layer.input_quant.quantize(inputs)
        config = AdaptiveSlicingConfig(max_test_patches=24, error_budget=0.05)
        clean = choose_weight_slicing(layer, patches, config)
        noisy = choose_weight_slicing(
            layer, patches, config, noise=GaussianColumnNoise(0.12, seed=0)
        )
        assert noisy.slicing.n_slices >= clean.slicing.n_slices

    def test_exhaustive_and_early_stop_agree(self, tiny_linear_layer, tiny_patches):
        early = choose_weight_slicing(
            tiny_linear_layer,
            tiny_patches,
            AdaptiveSlicingConfig(max_test_patches=32, group_early_stop=True),
        )
        full = choose_weight_slicing(
            tiny_linear_layer,
            tiny_patches,
            AdaptiveSlicingConfig(max_test_patches=32, group_early_stop=False),
        )
        assert early.slicing.n_slices == full.slicing.n_slices


class TestCompiler:
    def test_compile_produces_executor_per_layer(
        self, tiny_mlp_model, fast_compiler_config
    ):
        program = RaellaCompiler(fast_compiler_config).compile(tiny_mlp_model)
        assert set(program.layers) == {"fc1", "fc2"}

    def test_last_layer_uses_conservative_slicing(
        self, tiny_mlp_model, fast_compiler_config
    ):
        program = RaellaCompiler(fast_compiler_config).compile(tiny_mlp_model)
        assert program.layers["fc2"].choice.slicing == Slicing((1,) * 8)

    def test_compiled_program_runs_close_to_exact(
        self, tiny_mlp_model, fast_compiler_config, rng
    ):
        program = RaellaCompiler(fast_compiler_config).compile(tiny_mlp_model)
        x = np.abs(rng.normal(0, 1, size=(8, 16)))
        exact_out = tiny_mlp_model.forward_quantized(x)
        pim_out = program.run(x)
        scale = max(np.abs(exact_out).max(), 1e-6)
        assert np.abs(exact_out - pim_out).mean() / scale < 0.1

    def test_adaptive_disabled_uses_fixed_slicing(self, tiny_mlp_model):
        config = RaellaCompilerConfig(adaptive_slicing_enabled=False, n_test_inputs=2)
        program = RaellaCompiler(config).compile(tiny_mlp_model)
        for compiled in program.layers.values():
            assert compiled.choice.slicing == config.pim.weight_slicing

    def test_uncalibrated_model_rejected(self, rng):
        from repro.nn.layers import Linear
        from repro.nn.model import QuantizedModel
        from repro.nn.synthetic import synthetic_linear_weights

        model = QuantizedModel(
            "raw", [Linear("fc", synthetic_linear_weights(2, 4, rng))], input_shape=(4,)
        )
        with pytest.raises(ValueError):
            RaellaCompiler().compile(model)

    def test_statistics_aggregation_and_reset(
        self, tiny_mlp_model, fast_compiler_config, rng
    ):
        program = RaellaCompiler(fast_compiler_config).compile(tiny_mlp_model)
        program.reset_statistics()
        program.run(np.abs(rng.normal(0, 1, size=(4, 16))))
        total = program.aggregate_statistics()
        assert total.macs == 4 * tiny_mlp_model.total_macs()
        program.reset_statistics()
        assert program.aggregate_statistics().macs == 0

    def test_slicing_summary_keys(self, tiny_mlp_model, fast_compiler_config):
        program = RaellaCompiler(fast_compiler_config).compile(tiny_mlp_model)
        assert set(program.slicing_summary()) == {"fc1", "fc2"}

    def test_pim_matmul_rejects_unknown_layer(
        self, tiny_mlp_model, fast_compiler_config, rng
    ):
        from repro.nn.layers import Linear
        from repro.nn.synthetic import synthetic_linear_weights

        program = RaellaCompiler(fast_compiler_config).compile(tiny_mlp_model)
        stranger = Linear("stranger", synthetic_linear_weights(2, 4, rng))
        with pytest.raises(KeyError):
            program.pim_matmul(np.zeros((1, 4), dtype=int), stranger)

    def test_zero_offset_compiler_config(self, tiny_mlp_model):
        from repro.baselines.zero_offset import zero_offset_compiler_config

        config = zero_offset_compiler_config()
        assert config.pim.weight_encoding == WeightEncoding.ZERO_OFFSET
        assert not config.adaptive_slicing_enabled
        program = RaellaCompiler(config).compile(tiny_mlp_model)
        assert program.layers[
            "fc1"
        ].executor.config.weight_encoding == WeightEncoding.ZERO_OFFSET


class TestAccelerator:
    def test_run_produces_report(self, tiny_mlp_model, fast_compiler_config, rng):
        program = RaellaCompiler(fast_compiler_config).compile(tiny_mlp_model)
        accelerator = RaellaAccelerator()
        report = accelerator.run(program, np.abs(rng.normal(0, 1, size=(4, 16))))
        assert report.energy.total_pj > 0
        assert report.converts_per_mac > 0
        assert "fc1" in report.per_layer_statistics
        assert isinstance(report.summary(), str)

    def test_statistics_to_energy_components(
        self, tiny_mlp_model, fast_compiler_config, rng
    ):
        program = RaellaCompiler(fast_compiler_config).compile(tiny_mlp_model)
        program.run(np.abs(rng.normal(0, 1, size=(2, 16))))
        stats = program.aggregate_statistics()
        breakdown = statistics_to_energy(stats, RAELLA_ARCH)
        assert breakdown.components_pj["adc"] > 0
        assert breakdown.components_pj["crossbar"] > 0

    def test_evaluate_shapes(self):
        from repro.nn.zoo import model_shapes

        accelerator = RaellaAccelerator()
        energy, throughput = accelerator.evaluate_shapes(model_shapes("shufflenetv2"))
        assert energy.total_uj > 0
        assert throughput.throughput_samples_per_s > 0
