"""Tests for the vectorized runtime: parity, caching, pooling, NetworkEngine.

The contract of :mod:`repro.runtime` is *bit-identity* with the per-phase
reference executor -- same outputs, same statistics, same seeded noise draws
-- so most tests here compare the two paths exactly rather than within a
tolerance.
"""

import numpy as np
import pytest

from repro.analog.noise import GaussianColumnNoise
from repro.arithmetic.slicing import (
    ISAAC_INPUT_SLICING,
    ISAAC_WEIGHT_SLICING,
    Slicing,
)
from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.center_offset import WeightEncoding
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.core.dynamic_input import (
    InputSlicePlan,
    SpeculationMode,
    extract_input_slice,
)
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.nn.layers import Linear
from repro.nn.synthetic import synthetic_linear_weights
from repro.runtime import (
    EncodedWeightCache,
    ExecutorPool,
    NetworkEngine,
    VectorizedLayerExecutor,
    extract_phase_tensor,
)

#: Statistic counters that must match exactly between the two executor paths.
STAT_FIELDS = (
    "n_inputs",
    "macs",
    "n_crossbars",
    "n_columns",
    "cycles",
    "adc_converts_speculative",
    "adc_converts_recovery",
    "adc_converts_serial",
    "speculation_slots",
    "speculation_failures",
    "fidelity_loss_events",
    "fidelity_loss_opportunities",
    "crossbar_activity",
    "input_pulses",
    "psums_produced",
)

RAELLA_CONFIG = PimLayerConfig(collect_column_sums=True)
ISAAC_CONFIG = PimLayerConfig(
    adc_signed=False,
    weight_encoding=WeightEncoding.UNSIGNED,
    weight_slicing=ISAAC_WEIGHT_SLICING,
    speculation=SpeculationMode.BIT_SERIAL,
    serial_input_slicing=ISAAC_INPUT_SLICING,
    adc_bits=8,
)
ZERO_OFFSET_CONFIG = PimLayerConfig(weight_encoding=WeightEncoding.ZERO_OFFSET)
PARITY_CONFIGS = {
    "raella": RAELLA_CONFIG,
    "raella_multi_chunk": PimLayerConfig(crossbar_rows=7),
    "isaac": ISAAC_CONFIG,
    "zero_offset": ZERO_OFFSET_CONFIG,
}


def assert_stats_equal(a, b):
    for name in STAT_FIELDS:
        assert getattr(a, name) == getattr(b, name), name
    assert set(a.column_sums) == set(b.column_sums)
    for kind in a.column_sums:
        assert np.array_equal(a.column_sum_array(kind), b.column_sum_array(kind))


@pytest.fixture
def signed_layer_and_patches(rng):
    """A BERT-style signed-input layer with its quantized patches."""
    layer = Linear("signed_fc", synthetic_linear_weights(5, 16, rng), signed_input=True)
    inputs = rng.normal(0, 1, size=(32, 16))
    layer.calibrate(inputs, layer.forward_float(inputs))
    patches = layer.input_quant.quantize(inputs)
    assert patches.min() < 0
    return layer, patches


class TestPhaseTensor:
    def test_matches_per_phase_extraction(self, rng):
        plan = InputSlicePlan.build()
        codes = rng.integers(0, 256, size=(13, 9))
        tensor = extract_phase_tensor(codes, plan)
        assert tensor.shape == (plan.n_cycles, 13, 9)
        for index, phase in enumerate(plan.phases):
            assert np.array_equal(tensor[index], extract_input_slice(codes, phase))

    def test_bit_serial_plan(self, rng):
        plan = InputSlicePlan.build(mode=SpeculationMode.BIT_SERIAL)
        codes = rng.integers(0, 256, size=(4, 6))
        tensor = extract_phase_tensor(codes, plan)
        for index, phase in enumerate(plan.phases):
            assert np.array_equal(tensor[index], extract_input_slice(codes, phase))

    def test_rejects_negative_codes(self):
        plan = InputSlicePlan.build()
        with pytest.raises(ValueError):
            extract_phase_tensor(np.array([[-1, 2]]), plan)


class TestExecutorParity:
    """Vectorized executor vs per-phase reference: exact equality."""

    @pytest.mark.parametrize("name", sorted(PARITY_CONFIGS))
    def test_outputs_and_stats_identical(self, name, tiny_linear_layer, tiny_patches):
        config = PARITY_CONFIGS[name].with_changes(collect_column_sums=True)
        reference = PimLayerExecutor(tiny_linear_layer, config)
        vectorized = VectorizedLayerExecutor(
            tiny_linear_layer, config, weight_cache=None
        )
        assert np.array_equal(
            reference.matmul(tiny_patches), vectorized.matmul(tiny_patches)
        )
        assert_stats_equal(reference.stats, vectorized.stats)

    def test_signed_inputs_identical(self, signed_layer_and_patches):
        layer, patches = signed_layer_and_patches
        reference = PimLayerExecutor(layer, RAELLA_CONFIG)
        vectorized = VectorizedLayerExecutor(layer, RAELLA_CONFIG, weight_cache=None)
        assert np.array_equal(reference.matmul(patches), vectorized.matmul(patches))
        assert_stats_equal(reference.stats, vectorized.stats)

    @pytest.mark.parametrize("level", [0.04, 0.12])
    def test_seeded_noise_identical(self, level, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig(collect_column_sums=True)
        reference = PimLayerExecutor(
            tiny_linear_layer, config, noise=GaussianColumnNoise(level=level, seed=11)
        )
        vectorized = VectorizedLayerExecutor(
            tiny_linear_layer,
            config,
            noise=GaussianColumnNoise(level=level, seed=11),
            weight_cache=None,
        )
        assert np.array_equal(
            reference.matmul(tiny_patches), vectorized.matmul(tiny_patches)
        )
        assert_stats_equal(reference.stats, vectorized.stats)

    def test_every_weight_slicing_identical(self, tiny_linear_layer, tiny_patches):
        for widths in [(4, 4), (4, 2, 2), (2, 2, 2, 2), (1,) * 8]:
            config = PimLayerConfig(weight_slicing=Slicing(widths))
            reference = PimLayerExecutor(tiny_linear_layer, config)
            vectorized = VectorizedLayerExecutor(
                tiny_linear_layer, config, weight_cache=None
            )
            assert np.array_equal(
                reference.matmul(tiny_patches), vectorized.matmul(tiny_patches)
            ), widths

    def test_repeated_calls_accumulate_identically(
        self, tiny_linear_layer, tiny_patches
    ):
        reference = PimLayerExecutor(tiny_linear_layer, RAELLA_CONFIG)
        vectorized = VectorizedLayerExecutor(
            tiny_linear_layer, RAELLA_CONFIG, weight_cache=None
        )
        for _ in range(3):
            reference.matmul(tiny_patches)
            vectorized.matmul(tiny_patches)
        assert_stats_equal(reference.stats, vectorized.stats)


class TestEncodedWeightCache:
    def test_second_executor_hits_cache(self, tiny_linear_layer):
        cache = EncodedWeightCache()
        first = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig(), weight_cache=cache
        )
        second = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig(), weight_cache=cache
        )
        assert cache.misses == 1 and cache.hits == 1
        # The encoded chunks are shared objects, not re-encoded copies.
        assert first._chunks[0] is second._chunks[0]

    def test_different_slicing_is_a_different_entry(self, tiny_linear_layer):
        cache = EncodedWeightCache()
        VectorizedLayerExecutor(tiny_linear_layer, PimLayerConfig(), weight_cache=cache)
        VectorizedLayerExecutor(
            tiny_linear_layer,
            PimLayerConfig(weight_slicing=Slicing((2, 2, 2, 2))),
            weight_cache=cache,
        )
        assert cache.misses == 2 and len(cache) == 2

    def test_identical_weights_share_entries_across_layers(self, rng):
        weights = synthetic_linear_weights(4, 12, rng)
        inputs = np.abs(rng.normal(0, 1, size=(8, 12)))
        layers = []
        for name in ("twin_a", "twin_b"):
            layer = Linear(name, weights.copy(), fuse_relu=True)
            layer.calibrate(inputs, layer.forward_float(inputs))
            layers.append(layer)
        cache = EncodedWeightCache()
        for layer in layers:
            VectorizedLayerExecutor(layer, PimLayerConfig(), weight_cache=cache)
        # Same weight codes -> same fingerprint -> one encoding.
        assert cache.misses == 1 and cache.hits == 1

    def test_lru_eviction(self, tiny_linear_layer):
        cache = EncodedWeightCache(max_entries=1)
        VectorizedLayerExecutor(tiny_linear_layer, PimLayerConfig(), weight_cache=cache)
        VectorizedLayerExecutor(
            tiny_linear_layer,
            PimLayerConfig(weight_slicing=Slicing((2, 2, 2, 2))),
            weight_cache=cache,
        )
        assert len(cache) == 1
        VectorizedLayerExecutor(tiny_linear_layer, PimLayerConfig(), weight_cache=cache)
        assert cache.misses == 3  # the first entry was evicted

    def test_cached_executor_results_identical(self, tiny_linear_layer, tiny_patches):
        cache = EncodedWeightCache()
        uncached = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig(), weight_cache=None
        )
        VectorizedLayerExecutor(tiny_linear_layer, PimLayerConfig(), weight_cache=cache)
        cached = VectorizedLayerExecutor(
            tiny_linear_layer, PimLayerConfig(), weight_cache=cache
        )
        assert np.array_equal(
            uncached.matmul(tiny_patches), cached.matmul(tiny_patches)
        )


class TestExecutorPool:
    def test_reuses_executor(self, tiny_linear_layer):
        pool = ExecutorPool(weight_cache=None)
        a = pool.get(tiny_linear_layer, PimLayerConfig())
        b = pool.get(tiny_linear_layer, PimLayerConfig())
        assert a is b and len(pool) == 1

    def test_reset_stats_on_reuse(self, tiny_linear_layer, tiny_patches):
        pool = ExecutorPool(weight_cache=None)
        executor = pool.get(tiny_linear_layer, PimLayerConfig())
        executor.matmul(tiny_patches)
        again = pool.get(tiny_linear_layer, PimLayerConfig(), reset_stats=True)
        assert again is executor and again.stats.macs == 0

    def test_distinct_configs_get_distinct_executors(self, tiny_linear_layer):
        pool = ExecutorPool(weight_cache=None)
        a = pool.get(tiny_linear_layer, PimLayerConfig())
        b = pool.get(tiny_linear_layer, PimLayerConfig(adc_bits=9))
        assert a is not b and len(pool) == 2

    def test_reference_factory(self, tiny_linear_layer):
        pool = ExecutorPool(executor_factory=PimLayerExecutor, weight_cache=None)
        executor = pool.get(tiny_linear_layer, PimLayerConfig())
        assert type(executor) is PimLayerExecutor


class TestNetworkEngine:
    @pytest.fixture
    def fast_config(self):
        return RaellaCompilerConfig(
            adaptive=AdaptiveSlicingConfig(max_test_patches=64), n_test_inputs=2
        )

    def test_compiled_engine_matches_reference_program(
        self, tiny_mlp_model, fast_config, rng
    ):
        inputs = np.abs(rng.normal(0, 1, size=(6, 16)))
        engine = NetworkEngine.compile(tiny_mlp_model, config=fast_config, seed=0)
        program = RaellaCompiler(fast_config).compile(tiny_mlp_model, seed=0)
        assert np.array_equal(engine.run(inputs), program.run(inputs))
        for name, stats in engine.layer_statistics().items():
            assert_stats_equal(stats, program.layers[name].executor.stats)

    def test_conv_model_micro_batching_is_exact(self, tiny_conv_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(5, 3, 8, 8)))
        full = NetworkEngine.build(tiny_conv_model, PimLayerConfig())
        split = NetworkEngine.build(tiny_conv_model, PimLayerConfig(), micro_batch=2)
        assert np.array_equal(full.run(inputs), split.run(inputs))

    def test_micro_batching_preserves_statistics(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(6, 16)))
        full = NetworkEngine.build(tiny_mlp_model, PimLayerConfig())
        split = NetworkEngine.build(tiny_mlp_model, PimLayerConfig(), micro_batch=2)
        full.run(inputs)
        split.run(inputs)
        assert_stats_equal(full.network_statistics(), split.network_statistics())

    def test_seeded_noise_parity_with_reference_executors(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(4, 16)))
        vec_pool = ExecutorPool(weight_cache=None)
        ref_pool = ExecutorPool(executor_factory=PimLayerExecutor, weight_cache=None)
        vectorized = NetworkEngine.build(
            tiny_mlp_model,
            PimLayerConfig(),
            noise=GaussianColumnNoise(level=0.08, seed=5),
            pool=vec_pool,
        )
        reference = NetworkEngine.build(
            tiny_mlp_model,
            PimLayerConfig(),
            noise=GaussianColumnNoise(level=0.08, seed=5),
            pool=ref_pool,
        )
        assert np.array_equal(vectorized.run(inputs), reference.run(inputs))
        assert_stats_equal(
            vectorized.network_statistics(), reference.network_statistics()
        )

    def test_network_statistics_sum_crossbars_across_layers(self, tiny_mlp_model, rng):
        engine = NetworkEngine.build(tiny_mlp_model, PimLayerConfig())
        engine.run(np.abs(rng.normal(0, 1, size=(2, 16))))
        per_layer = engine.layer_statistics()
        total = engine.network_statistics()
        assert total.n_crossbars == sum(s.n_crossbars for s in per_layer.values())
        assert total.n_columns == sum(s.n_columns for s in per_layer.values())

    def test_reset_statistics(self, tiny_mlp_model, rng):
        engine = NetworkEngine.build(tiny_mlp_model, PimLayerConfig())
        engine.run(np.abs(rng.normal(0, 1, size=(2, 16))))
        engine.reset_statistics()
        assert engine.network_statistics().macs == 0

    def test_predict_shape(self, tiny_mlp_model, rng):
        engine = NetworkEngine.build(tiny_mlp_model, PimLayerConfig(), micro_batch=3)
        predictions = engine.predict(np.abs(rng.normal(0, 1, size=(5, 16))))
        assert predictions.shape == (5,)

    def test_explicit_none_overrides_engine_default(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(6, 16)))
        engine = NetworkEngine.build(
            tiny_mlp_model, PimLayerConfig(), micro_batch=2, pool=ExecutorPool()
        )
        executor = engine.executors["fc1"]
        batch_sizes = []
        original = executor.matmul

        def spy(codes):
            batch_sizes.append(codes.shape[0])
            return original(codes)

        executor.matmul = spy
        engine.run(inputs, micro_batch=None)  # explicit None -> one full pass
        assert batch_sizes == [6]
        engine.run(inputs)  # engine default of 2 applies
        assert batch_sizes[1:] == [2, 2, 2]

    def test_missing_executor_is_rejected(self, tiny_mlp_model):
        with pytest.raises(ValueError):
            NetworkEngine(tiny_mlp_model, executors={})

    def test_unknown_layer_dispatch_raises(self, tiny_mlp_model, rng):
        engine = NetworkEngine.build(tiny_mlp_model, PimLayerConfig())
        stranger = Linear("stranger", synthetic_linear_weights(2, 4, rng))
        with pytest.raises(KeyError):
            engine.pim_matmul(np.zeros((1, 4), dtype=int), stranger)


class TestModelMicroBatching:
    def test_forward_quantized_micro_batch_is_exact(self, tiny_mlp_model, rng):
        inputs = np.abs(rng.normal(0, 1, size=(7, 16)))
        full = tiny_mlp_model.forward_quantized(inputs)
        split = tiny_mlp_model.forward_quantized(inputs, micro_batch=3)
        assert np.array_equal(full, split)

    def test_invalid_micro_batch_rejected(self, tiny_mlp_model, rng):
        with pytest.raises(ValueError):
            tiny_mlp_model.forward_quantized(
                np.abs(rng.normal(0, 1, size=(2, 16))), micro_batch=0
            )
