"""End-to-end integration tests: model -> compile -> execute -> report."""

import numpy as np
import pytest

from repro.analog.noise import GaussianColumnNoise
from repro.core.accelerator import RaellaAccelerator
from repro.core.adaptive_slicing import AdaptiveSlicingConfig
from repro.core.center_offset import WeightEncoding
from repro.core.compiler import RaellaCompiler, RaellaCompilerConfig
from repro.experiments.table4_accuracy import clone_program_with_encoding
from repro.hw.architecture import ISAAC_ARCH, RAELLA_ARCH
from repro.nn.datasets import gaussian_clusters
from repro.nn.training import evaluate_accuracy, train_mlp
from repro.nn.zoo import build_runnable, model_shapes


@pytest.fixture(scope="module")
def small_training():
    dataset = gaussian_clusters(
        n_classes=5,
        n_features=48,
        n_train=250,
        n_test=120,
        separation=1.6,
        noise=0.9,
        seed=7,
    )
    result = train_mlp(dataset, hidden_sizes=[64], epochs=15, seed=7)
    return dataset, result


@pytest.fixture(scope="module")
def fast_config():
    return RaellaCompilerConfig(
        adaptive=AdaptiveSlicingConfig(max_test_patches=64), n_test_inputs=2
    )


class TestEndToEndAccuracy:
    def test_raella_preserves_trained_accuracy(self, small_training, fast_config):
        dataset, training = small_training
        program = RaellaCompiler(fast_config).compile(
            training.model, test_inputs=dataset.x_train[:2]
        )
        pim_accuracy = evaluate_accuracy(
            training.model, dataset, pim_matmul=program.pim_matmul, max_samples=120
        )
        # No-retraining claim: RAELLA accuracy within 3 points of exact 8-bit.
        assert pim_accuracy >= training.quantized_accuracy - 0.03

    def test_zero_offset_clone_matches_structure(self, small_training, fast_config):
        dataset, training = small_training
        program = RaellaCompiler(fast_config).compile(
            training.model, test_inputs=dataset.x_train[:2]
        )
        zero = clone_program_with_encoding(program, WeightEncoding.ZERO_OFFSET)
        assert set(zero.layers) == set(program.layers)
        for name in program.layers:
            assert (
                zero.layers[name].choice.slicing == program.layers[name].choice.slicing
            )

    @pytest.mark.slow
    def test_heavy_noise_degrades_isaac_more_than_raella(self, small_training):
        dataset, training = small_training
        from repro.baselines.isaac import IsaacBaseline

        noise_level = 0.12
        raella_cfg = RaellaCompilerConfig(
            adaptive=AdaptiveSlicingConfig(max_test_patches=64), n_test_inputs=2
        )
        isaac_cfg = RaellaCompilerConfig(
            pim=IsaacBaseline().pim_config(),
            adaptive_slicing_enabled=False,
            n_test_inputs=2,
        )
        raella_prog = RaellaCompiler(
            raella_cfg, noise=GaussianColumnNoise(noise_level, seed=0)
        ).compile(training.model, test_inputs=dataset.x_train[:2])
        isaac_prog = RaellaCompiler(
            isaac_cfg, noise=GaussianColumnNoise(noise_level, seed=0)
        ).compile(training.model, test_inputs=dataset.x_train[:2])
        raella_acc = evaluate_accuracy(
            training.model, dataset, pim_matmul=raella_prog.pim_matmul, max_samples=100
        )
        isaac_acc = evaluate_accuracy(
            training.model, dataset, pim_matmul=isaac_prog.pim_matmul, max_samples=100
        )
        assert raella_acc >= isaac_acc


class TestEndToEndZooPipeline:
    def test_runnable_model_through_accelerator(self, fast_config):
        model = build_runnable("shufflenetv2", seed=0)
        program = RaellaCompiler(fast_config).compile(model, seed=0)
        accelerator = RaellaAccelerator()
        rng = np.random.default_rng(0)
        inputs = np.abs(rng.normal(0, 1, size=(1, *model.input_shape)))
        report = accelerator.run(program, inputs)
        assert report.energy.total_pj > 0
        assert 0 < report.converts_per_mac < 1
        assert report.outputs.shape[0] == 1

    @pytest.mark.slow
    def test_functional_converts_per_mac_consistent_with_analytic(self, fast_config):
        """The measured Converts/MAC should land near the cost model's estimate."""
        model = build_runnable("resnet18", seed=0)
        program = RaellaCompiler(fast_config).compile(model, seed=0)
        rng = np.random.default_rng(1)
        inputs = np.abs(rng.normal(0, 1, size=(1, *model.input_shape)))
        program.reset_statistics()
        program.run(inputs)
        measured = program.aggregate_statistics().converts_per_mac
        # The runnable models have far fewer rows per crossbar than the
        # full-scale DNNs, so Converts/MAC is higher, but it must stay well
        # under ISAAC's 0.25 and above RAELLA's full-scale 0.018.
        assert 0.005 < measured < 0.25

    def test_full_scale_energy_and_throughput_pipeline(self):
        shapes = model_shapes("resnet18")
        raella = RaellaAccelerator(arch=RAELLA_ARCH)
        isaac = RaellaAccelerator(arch=ISAAC_ARCH)
        raella_energy, raella_tp = raella.evaluate_shapes(shapes)
        isaac_energy, isaac_tp = isaac.evaluate_shapes(shapes)
        assert isaac_energy.total_uj / raella_energy.total_uj > 2.5
        assert raella_tp.throughput_samples_per_s > isaac_tp.throughput_samples_per_s


class TestBertPipeline:
    @pytest.mark.slow
    def test_signed_transformer_ffn_executes(self, fast_config):
        model = build_runnable("bert_large_ffn", seed=0)
        program = RaellaCompiler(fast_config).compile(model, seed=0)
        rng = np.random.default_rng(2)
        x = rng.normal(0, 1, size=(4, *model.input_shape))
        exact = model.forward_quantized(x)
        pim = program.run(x)
        scale = max(np.abs(exact).max(), 1e-6)
        assert np.abs(exact - pim).mean() / scale < 0.1
