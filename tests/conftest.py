"""Shared fixtures for the RAELLA reproduction test suite.

Fixtures are deliberately tiny (a few dozen rows / filters) so the whole suite
runs quickly while still exercising every code path of the functional
simulator and cost models.
"""

from __future__ import annotations

import multiprocessing
import os
import sys
import threading
import time
from multiprocessing import shared_memory

import numpy as np
import pytest

from repro.nn.layers import Conv2d, GlobalAvgPool, Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_conv_weights, synthetic_linear_weights


def _shared_memory_blocks() -> set[str]:
    """Names of live ``multiprocessing.shared_memory`` blocks (``psm_*``).

    The zero-copy transport in :mod:`repro.runtime.procpool` backs every
    worker request/reply with ``/dev/shm`` blocks; a leak outlives the
    process that mapped it and eats machine memory until reboot.  On
    platforms without a visible ``/dev/shm`` this degrades to an empty set
    (the process-leak check still applies).
    """
    try:
        entries = os.listdir("/dev/shm")
    except OSError:
        return set()
    return {name for name in entries if name.startswith("psm_")}


def _event_loop_threads(known: set[threading.Thread]) -> list[threading.Thread]:
    """Threads (beyond ``known``) currently running an asyncio event loop.

    Detected by walking each thread's live stack for asyncio's
    ``run_forever`` frame -- no cooperation needed from the leaking test.
    """
    frames = sys._current_frames()
    leaked = []
    for thread in threading.enumerate():
        if thread in known or not thread.is_alive():
            continue
        frame = frames.get(thread.ident)
        while frame is not None:
            code = frame.f_code
            if code.co_name in ("run_forever", "run_until_complete") and (
                code.co_filename.endswith("base_events.py")
            ):
                leaked.append(thread)
                break
            frame = frame.f_back
    return leaked


@pytest.fixture(autouse=True)
def no_leaked_worker_processes():
    """Resource hygiene: no leaked processes, shared memory or event loops.

    Process-backed engines (:mod:`repro.runtime.procpool`) spawn one child
    per hosted model plus shared-memory transport blocks, and the asyncio
    front door (:mod:`repro.serve.aio`) runs under event loops; a test that
    forgets to close any of them leaves state that outlives the test and
    poisons later ones.  Leftovers are reclaimed so the failure does not
    cascade, then the test fails.
    """
    shm_before = _shared_memory_blocks()
    threads_before = set(threading.enumerate())
    yield
    leaked = multiprocessing.active_children()
    for child in leaked:
        child.terminate()
        child.join(timeout=5)
    # Give async teardowns a short grace window: closing an event loop (or
    # a killed worker's resource cleanup) can lag the test body by a tick.
    deadline = time.monotonic() + 2.0
    while time.monotonic() < deadline:
        leaked_shm = _shared_memory_blocks() - shm_before
        loops = _event_loop_threads(threads_before)
        if not leaked_shm and not loops:
            break
        time.sleep(0.05)
    leaked_shm = _shared_memory_blocks() - shm_before
    loops = _event_loop_threads(threads_before)
    for name in leaked_shm:  # reclaim so one failure does not cascade
        try:
            block = shared_memory.SharedMemory(name=name)
        except OSError:
            continue
        block.close()
        block.unlink()
    assert not leaked, f"test leaked worker processes: {leaked}"
    assert not leaked_shm, f"test leaked shared-memory blocks: {sorted(leaked_shm)}"
    assert not loops, f"test leaked running event loops on threads: {loops}"


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_linear_layer(rng) -> Linear:
    """A calibrated linear layer with 24 inputs and 6 outputs."""
    weights = synthetic_linear_weights(6, 24, rng, std=0.2, mean_spread=0.05)
    layer = Linear("tiny_fc", weights, bias=rng.normal(0, 0.1, size=6), fuse_relu=True)
    inputs = np.abs(rng.normal(0.0, 1.0, size=(32, 24)))
    outputs = layer.forward_float(inputs)
    layer.calibrate(inputs, outputs)
    return layer


@pytest.fixture
def tiny_patches(rng, tiny_linear_layer) -> np.ndarray:
    """Input code patches for the tiny linear layer."""
    inputs = np.abs(rng.normal(0.0, 1.0, size=(48, 24)))
    return tiny_linear_layer.input_quant.quantize(inputs)


@pytest.fixture
def tiny_conv_model(rng) -> QuantizedModel:
    """A two-conv calibrated model on 8x8 RGB inputs."""
    conv1 = Conv2d(
        "c1", synthetic_conv_weights(4, 3, 3, rng, std=0.3), stride=1, padding=1
    )
    conv2 = Conv2d(
        "c2", synthetic_conv_weights(6, 4, 3, rng, std=0.3), stride=2, padding=1
    )
    head = Linear("fc", synthetic_linear_weights(5, 6, rng, std=0.3))
    model = QuantizedModel(
        "tiny_conv", [conv1, conv2, GlobalAvgPool(), head], input_shape=(3, 8, 8)
    )
    calibration = np.abs(rng.normal(0.0, 1.0, size=(4, 3, 8, 8)))
    model.calibrate(calibration)
    return model


@pytest.fixture
def tiny_mlp_model(rng) -> QuantizedModel:
    """A two-layer calibrated MLP on 16 features."""
    fc1 = Linear("fc1", synthetic_linear_weights(12, 16, rng, std=0.25), fuse_relu=True)
    fc2 = Linear("fc2", synthetic_linear_weights(4, 12, rng, std=0.25))
    model = QuantizedModel("tiny_mlp", [fc1, fc2], input_shape=(16,))
    model.calibrate(np.abs(rng.normal(0.0, 1.0, size=(32, 16))))
    return model
