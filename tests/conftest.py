"""Shared fixtures for the RAELLA reproduction test suite.

Fixtures are deliberately tiny (a few dozen rows / filters) so the whole suite
runs quickly while still exercising every code path of the functional
simulator and cost models.
"""

from __future__ import annotations

import multiprocessing

import numpy as np
import pytest

from repro.nn.layers import Conv2d, GlobalAvgPool, Linear
from repro.nn.model import QuantizedModel
from repro.nn.synthetic import synthetic_conv_weights, synthetic_linear_weights


@pytest.fixture(autouse=True)
def no_leaked_worker_processes():
    """Worker-process hygiene: no test may leak engine worker children.

    Process-backed engines (:mod:`repro.runtime.procpool`) spawn one child
    per hosted model; a test that forgets to close them would leave orphans
    that outlive the suite and poison later tests.  Any leftover child is
    terminated so the failure does not cascade, then the test fails.
    """
    yield
    leaked = multiprocessing.active_children()
    for child in leaked:
        child.terminate()
        child.join(timeout=5)
    assert not leaked, f"test leaked worker processes: {leaked}"


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator."""
    return np.random.default_rng(1234)


@pytest.fixture
def tiny_linear_layer(rng) -> Linear:
    """A calibrated linear layer with 24 inputs and 6 outputs."""
    weights = synthetic_linear_weights(6, 24, rng, std=0.2, mean_spread=0.05)
    layer = Linear("tiny_fc", weights, bias=rng.normal(0, 0.1, size=6), fuse_relu=True)
    inputs = np.abs(rng.normal(0.0, 1.0, size=(32, 24)))
    outputs = layer.forward_float(inputs)
    layer.calibrate(inputs, outputs)
    return layer


@pytest.fixture
def tiny_patches(rng, tiny_linear_layer) -> np.ndarray:
    """Input code patches for the tiny linear layer."""
    inputs = np.abs(rng.normal(0.0, 1.0, size=(48, 24)))
    return tiny_linear_layer.input_quant.quantize(inputs)


@pytest.fixture
def tiny_conv_model(rng) -> QuantizedModel:
    """A two-conv calibrated model on 8x8 RGB inputs."""
    conv1 = Conv2d(
        "c1", synthetic_conv_weights(4, 3, 3, rng, std=0.3), stride=1, padding=1
    )
    conv2 = Conv2d(
        "c2", synthetic_conv_weights(6, 4, 3, rng, std=0.3), stride=2, padding=1
    )
    head = Linear("fc", synthetic_linear_weights(5, 6, rng, std=0.3))
    model = QuantizedModel(
        "tiny_conv", [conv1, conv2, GlobalAvgPool(), head], input_shape=(3, 8, 8)
    )
    calibration = np.abs(rng.normal(0.0, 1.0, size=(4, 3, 8, 8)))
    model.calibrate(calibration)
    return model


@pytest.fixture
def tiny_mlp_model(rng) -> QuantizedModel:
    """A two-layer calibrated MLP on 16 features."""
    fc1 = Linear("fc1", synthetic_linear_weights(12, 16, rng, std=0.25), fuse_relu=True)
    fc2 = Linear("fc2", synthetic_linear_weights(4, 12, rng, std=0.25))
    model = QuantizedModel("tiny_mlp", [fc1, fc2], input_shape=(16,))
    model.calibrate(np.abs(rng.normal(0.0, 1.0, size=(32, 16))))
    return model
