"""Tests for the PIM layer executor."""

import numpy as np
import pytest

from repro.analog.noise import GaussianColumnNoise
from repro.arithmetic.slicing import ISAAC_WEIGHT_SLICING, Slicing
from repro.core.center_offset import WeightEncoding
from repro.core.dynamic_input import SpeculationMode
from repro.core.executor import PimLayerConfig, PimLayerExecutor
from repro.nn.layers import Linear
from repro.nn.synthetic import synthetic_linear_weights

WIDE_ADC = 16  # wide enough that nothing ever saturates


def exact(layer, patches):
    return patches @ layer.weight_codes


class TestConfigValidation:
    def test_default_config_is_raella(self):
        config = PimLayerConfig()
        assert config.crossbar_rows == 512
        assert config.adc_bits == 7
        assert config.adc_min == -64 and config.adc_max == 63

    def test_unsigned_adc_bounds(self):
        config = PimLayerConfig(
            adc_signed=False,
            weight_encoding=WeightEncoding.UNSIGNED,
            weight_slicing=ISAAC_WEIGHT_SLICING,
            speculation=SpeculationMode.BIT_SERIAL,
            adc_bits=8,
        )
        assert config.adc_min == 0 and config.adc_max == 255

    def test_rejects_slices_wider_than_device(self):
        with pytest.raises(ValueError):
            PimLayerConfig(weight_slicing=Slicing((8,)), device_bits=4)

    def test_rejects_offsets_on_unsigned_crossbar(self):
        with pytest.raises(ValueError):
            PimLayerConfig(adc_signed=False)

    def test_rejects_incomplete_weight_slicing(self):
        with pytest.raises(ValueError):
            PimLayerConfig(weight_slicing=Slicing((4, 2)))

    def test_rejects_mismatched_serial_slicing(self):
        with pytest.raises(ValueError):
            PimLayerConfig(serial_input_slicing=Slicing((4, 2)))

    def test_with_changes_creates_copy(self):
        base = PimLayerConfig()
        changed = base.with_changes(adc_bits=9)
        assert changed.adc_bits == 9 and base.adc_bits == 7


class TestExactness:
    """With a wide ADC and no noise, every configuration must be exact."""

    def test_bit_serial_center_offset_is_exact(self, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig(
            adc_bits=WIDE_ADC, speculation=SpeculationMode.BIT_SERIAL
        )
        executor = PimLayerExecutor(tiny_linear_layer, config)
        assert np.allclose(
            executor.matmul(tiny_patches), exact(tiny_linear_layer, tiny_patches)
        )

    def test_speculative_center_offset_is_exact(self, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig(adc_bits=WIDE_ADC)
        executor = PimLayerExecutor(tiny_linear_layer, config)
        assert np.allclose(
            executor.matmul(tiny_patches), exact(tiny_linear_layer, tiny_patches)
        )

    def test_zero_offset_is_exact(self, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig(
            adc_bits=WIDE_ADC, weight_encoding=WeightEncoding.ZERO_OFFSET
        )
        executor = PimLayerExecutor(tiny_linear_layer, config)
        assert np.allclose(
            executor.matmul(tiny_patches), exact(tiny_linear_layer, tiny_patches)
        )

    def test_unsigned_isaac_style_is_exact(self, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig(
            crossbar_rows=16,
            adc_bits=WIDE_ADC,
            adc_signed=False,
            weight_encoding=WeightEncoding.UNSIGNED,
            weight_slicing=ISAAC_WEIGHT_SLICING,
            speculation=SpeculationMode.BIT_SERIAL,
        )
        executor = PimLayerExecutor(tiny_linear_layer, config)
        assert np.allclose(
            executor.matmul(tiny_patches), exact(tiny_linear_layer, tiny_patches)
        )

    def test_multiple_row_chunks_are_exact(self, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig(crossbar_rows=7, adc_bits=WIDE_ADC)
        executor = PimLayerExecutor(tiny_linear_layer, config)
        assert executor.n_row_chunks == 4
        assert np.allclose(
            executor.matmul(tiny_patches), exact(tiny_linear_layer, tiny_patches)
        )

    def test_every_weight_slicing_is_exact(self, tiny_linear_layer, tiny_patches):
        for widths in [(4, 4), (4, 2, 2), (2, 2, 2, 2), (1,) * 8, (3, 3, 2)]:
            config = PimLayerConfig(adc_bits=WIDE_ADC, weight_slicing=Slicing(widths))
            executor = PimLayerExecutor(tiny_linear_layer, config)
            assert np.allclose(
                executor.matmul(tiny_patches), exact(tiny_linear_layer, tiny_patches)
            ), widths

    def test_signed_inputs_are_exact(self, rng):
        layer = Linear(
            "signed_fc", synthetic_linear_weights(5, 16, rng), signed_input=True
        )
        inputs = rng.normal(0, 1, size=(32, 16))
        layer.calibrate(inputs, layer.forward_float(inputs))
        patches = layer.input_quant.quantize(inputs)
        assert patches.min() < 0
        executor = PimLayerExecutor(layer, PimLayerConfig(adc_bits=WIDE_ADC))
        assert np.allclose(executor.matmul(patches), exact(layer, patches))


class TestSaturationBehaviour:
    def test_narrow_adc_introduces_bounded_error(self, tiny_linear_layer, tiny_patches):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig(adc_bits=7))
        approx = executor.matmul(tiny_patches)
        reference = exact(tiny_linear_layer, tiny_patches)
        relative = np.abs(approx - reference).mean() / max(np.abs(reference).mean(), 1)
        assert relative < 0.05

    def test_very_narrow_adc_saturates_often(self, tiny_linear_layer, tiny_patches):
        executor = PimLayerExecutor(
            tiny_linear_layer,
            PimLayerConfig(adc_bits=3, speculation=SpeculationMode.BIT_SERIAL),
        )
        executor.matmul(tiny_patches)
        assert executor.stats.fidelity_loss_rate > 0.01

    def test_center_offset_saturates_less_than_zero_offset(self, rng):
        # A long, skewed filter: the encoding difference shows up as ADC
        # saturation pressure (speculation failures).
        weights = synthetic_linear_weights(4, 512, rng, std=0.05, mean_spread=0.04)
        layer = Linear("skewed", weights, fuse_relu=True)
        inputs = np.abs(rng.normal(0, 1.0, size=(16, 512)))
        layer.calibrate(inputs, layer.forward_float(inputs))
        patches = layer.input_quant.quantize(inputs)

        def failure_rate(encoding):
            executor = PimLayerExecutor(layer, PimLayerConfig(weight_encoding=encoding))
            executor.matmul(patches)
            return executor.stats.speculation_failure_rate

        assert failure_rate(WeightEncoding.CENTER_OFFSET) < failure_rate(
            WeightEncoding.ZERO_OFFSET
        )


class TestSaturationDetection:
    """Saturation is a *clipping* event: at-rail sums are converted exactly."""

    def test_at_rail_sums_are_not_saturated(self, tiny_linear_layer):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        config = executor.config
        sums = np.array(
            [float(config.adc_max), float(config.adc_min), 0.0], dtype=np.float64
        )
        converted, saturated = executor._convert(sums)
        assert np.array_equal(converted, sums)
        assert not saturated.any()

    def test_beyond_rail_sums_are_saturated(self, tiny_linear_layer):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        config = executor.config
        sums = np.array([config.adc_max + 1.0, config.adc_min - 1.0], dtype=np.float64)
        converted, saturated = executor._convert(sums)
        assert np.array_equal(converted, [config.adc_max, config.adc_min])
        assert saturated.all()

    def test_unsigned_adc_rails(self, tiny_linear_layer):
        config = PimLayerConfig(
            adc_signed=False,
            weight_encoding=WeightEncoding.UNSIGNED,
            weight_slicing=ISAAC_WEIGHT_SLICING,
            speculation=SpeculationMode.BIT_SERIAL,
            adc_bits=8,
        )
        executor = PimLayerExecutor(tiny_linear_layer, config)
        # At-rail sums convert exactly; overflow and (noise-driven) underflow
        # both clip and both count as saturation.
        sums = np.array([255.0, 256.0, 0.0, -1.0], dtype=np.float64)
        converted, saturated = executor._convert(sums)
        assert converted.tolist() == [255.0, 255.0, 0.0, 0.0]
        assert saturated.tolist() == [False, True, False, True]


class TestStatistics:
    def test_converts_per_mac_bit_serial(self, tiny_linear_layer, tiny_patches):
        config = PimLayerConfig(
            adc_bits=WIDE_ADC,
            speculation=SpeculationMode.BIT_SERIAL,
            weight_slicing=Slicing((4, 2, 2)),
        )
        executor = PimLayerExecutor(tiny_linear_layer, config)
        executor.matmul(tiny_patches)
        # 8 input slices x 3 weight slices per column / 24 rows.
        assert executor.stats.converts_per_mac == pytest.approx(24 / 24)

    def test_speculation_reduces_converts(self, tiny_linear_layer, tiny_patches):
        serial = PimLayerExecutor(
            tiny_linear_layer,
            PimLayerConfig(speculation=SpeculationMode.BIT_SERIAL),
        )
        spec = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        serial.matmul(tiny_patches)
        spec.matmul(tiny_patches)
        assert spec.stats.total_adc_converts < serial.stats.total_adc_converts

    def test_macs_and_psums_counted(self, tiny_linear_layer, tiny_patches):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        executor.matmul(tiny_patches)
        m, k = tiny_patches.shape
        assert executor.stats.macs == m * k * tiny_linear_layer.out_features
        assert executor.stats.psums_produced == m * tiny_linear_layer.out_features

    def test_cycles_per_input(self, tiny_linear_layer, tiny_patches):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        executor.matmul(tiny_patches)
        assert executor.stats.cycles == tiny_patches.shape[0] * 11

    def test_reset_stats(self, tiny_linear_layer, tiny_patches):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        executor.matmul(tiny_patches)
        executor.reset_stats()
        assert executor.stats.total_adc_converts == 0
        assert executor.stats.n_crossbars > 0  # structural info survives

    def test_column_sum_collection(self, tiny_linear_layer, tiny_patches):
        executor = PimLayerExecutor(
            tiny_linear_layer, PimLayerConfig(collect_column_sums=True)
        )
        executor.matmul(tiny_patches)
        spec_sums = executor.stats.column_sum_array("speculative")
        assert spec_sums.size > 0

    def test_column_sum_sample_cap(self, tiny_linear_layer, tiny_patches):
        executor = PimLayerExecutor(
            tiny_linear_layer,
            PimLayerConfig(collect_column_sums=True, max_column_sum_samples=100),
        )
        executor.matmul(tiny_patches)
        assert executor.stats.column_sum_array("speculative").size <= 100

    def test_merge_accumulates(self, tiny_linear_layer, tiny_patches):
        a = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        b = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        a.matmul(tiny_patches)
        b.matmul(tiny_patches)
        merged = a.stats.merge(b.stats)
        assert merged.macs == 2 * b.stats.macs

    def test_merge_runs_keeps_structural_maximum(self, tiny_linear_layer, tiny_patches):
        a = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        b = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        a.matmul(tiny_patches)
        b.matmul(tiny_patches)
        n_crossbars, n_columns = a.stats.n_crossbars, a.stats.n_columns
        merged = a.stats.merge_runs(b.stats)
        # Re-running the same layer does not grow its crossbar footprint.
        assert merged.n_crossbars == n_crossbars
        assert merged.n_columns == n_columns

    def test_merge_layers_sums_structural_totals(self, tiny_linear_layer, tiny_patches):
        a = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        b = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        a.matmul(tiny_patches)
        b.matmul(tiny_patches)
        n_crossbars = a.stats.n_crossbars + b.stats.n_crossbars
        n_columns = a.stats.n_columns + b.stats.n_columns
        merged = a.stats.merge_layers(b.stats)
        assert merged.n_crossbars == n_crossbars
        assert merged.n_columns == n_columns
        assert merged.macs == 2 * b.stats.macs

    def test_column_sum_sampling_spans_whole_output(self, tiny_linear_layer):
        executor = PimLayerExecutor(
            tiny_linear_layer,
            PimLayerConfig(collect_column_sums=True, max_column_sum_samples=10),
        )
        executor._record_column_sums("serial", np.arange(1000.0))
        sample = executor.stats.column_sum_array("serial")
        # Deterministic stride across the whole phase output, not a prefix.
        assert np.array_equal(sample, np.arange(0.0, 1000.0, 100.0))

    def test_column_sum_sampling_fills_budget_when_not_divisible(
        self, tiny_linear_layer
    ):
        executor = PimLayerExecutor(
            tiny_linear_layer,
            PimLayerConfig(collect_column_sums=True, max_column_sum_samples=600),
        )
        executor._record_column_sums("serial", np.arange(1000.0))
        sample = executor.stats.column_sum_array("serial")
        # Exactly the configured budget, spread over the whole output.
        assert sample.size == 600
        assert sample[0] == 0.0 and sample[-1] >= 990.0

    def test_statistics_failure_rates_bounded(self, tiny_linear_layer, tiny_patches):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        executor.matmul(tiny_patches)
        assert 0.0 <= executor.stats.speculation_failure_rate <= 1.0
        assert 0.0 <= executor.stats.fidelity_loss_rate <= 1.0


class TestNoiseAndMisc:
    def test_noise_perturbs_results(self, tiny_linear_layer, tiny_patches):
        noisy = PimLayerExecutor(
            tiny_linear_layer,
            PimLayerConfig(adc_bits=WIDE_ADC),
            noise=GaussianColumnNoise(level=0.1, seed=0),
        )
        clean = exact(tiny_linear_layer, tiny_patches)
        assert not np.allclose(noisy.matmul(tiny_patches), clean)

    def test_noise_error_grows_with_level(self, tiny_linear_layer, tiny_patches):
        def mean_error(level):
            executor = PimLayerExecutor(
                tiny_linear_layer,
                PimLayerConfig(adc_bits=WIDE_ADC),
                noise=GaussianColumnNoise(level=level, seed=1),
            )
            return np.abs(
                executor.matmul(tiny_patches) - exact(tiny_linear_layer, tiny_patches)
            ).mean()

        assert mean_error(0.12) > mean_error(0.02)

    def test_hook_interface_checks_layer(self, tiny_linear_layer, tiny_patches, rng):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        other = Linear("other", synthetic_linear_weights(3, 24, rng))
        with pytest.raises(ValueError):
            executor(tiny_patches, other)

    def test_rejects_wrong_input_width(self, tiny_linear_layer):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig())
        with pytest.raises(ValueError):
            executor.matmul(np.zeros((2, 10), dtype=int))

    def test_encoded_chunks_reconstruct_weights(self, tiny_linear_layer):
        executor = PimLayerExecutor(tiny_linear_layer, PimLayerConfig(crossbar_rows=10))
        reconstructed = np.concatenate(
            [chunk.reconstruct_codes() for chunk in executor.encoded_chunks], axis=0
        )
        assert np.array_equal(reconstructed, tiny_linear_layer.weight_codes)
