"""Tests for the model zoo: shape tables and runnable models."""

import numpy as np
import pytest

from repro.nn.zoo import (
    CNN_MODEL_NAMES,
    MODEL_NAMES,
    LayerShape,
    build_runnable,
    model_shapes,
)


class TestLayerShape:
    def test_conv_derived_quantities(self):
        layer = LayerShape(
            "conv",
            "conv",
            in_channels=64,
            out_channels=128,
            kernel_h=3,
            kernel_w=3,
            stride=2,
            input_size=56,
        )
        assert layer.reduction_dim == 64 * 9
        assert layer.output_size == 28
        assert layer.weights == 64 * 9 * 128
        assert layer.macs == layer.weights * 28 * 28

    def test_depthwise_reduction_dim(self):
        layer = LayerShape(
            "dw",
            "dwconv",
            in_channels=64,
            out_channels=64,
            kernel_h=3,
            kernel_w=3,
            stride=1,
            input_size=28,
            groups=64,
        )
        assert layer.reduction_dim == 9

    def test_linear_positions(self):
        layer = LayerShape(
            "fc", "linear", in_channels=1024, out_channels=4096, input_size=384
        )
        assert layer.output_positions == 384
        assert layer.macs == 1024 * 4096 * 384

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            LayerShape("x", "pool", in_channels=4, out_channels=4)

    def test_rejects_bad_groups(self):
        with pytest.raises(ValueError):
            LayerShape("x", "conv", in_channels=5, out_channels=4, groups=2)


class TestShapeTables:
    def test_all_models_available(self):
        assert len(MODEL_NAMES) == 7
        for name in MODEL_NAMES:
            assert model_shapes(name).n_layers > 0

    def test_unknown_model_raises(self):
        with pytest.raises(KeyError):
            model_shapes("vgg16")

    @pytest.mark.parametrize(
        "name, expected_gmacs, tolerance",
        [
            ("resnet18", 1.82, 0.15),
            ("resnet50", 4.1, 0.2),
            ("googlenet", 1.5, 0.2),
            ("inceptionv3", 5.7, 0.3),
            ("mobilenetv2", 0.31, 0.15),
            ("shufflenetv2", 0.15, 0.1),
        ],
    )
    def test_mac_counts_near_published_values(self, name, expected_gmacs, tolerance):
        gmacs = model_shapes(name).total_macs / 1e9
        assert abs(gmacs - expected_gmacs) / expected_gmacs <= tolerance

    def test_resnet50_weight_count_near_published(self):
        weights = model_shapes("resnet50").total_weights / 1e6
        assert 22 <= weights <= 28

    def test_bert_ffn_is_signed_and_large(self):
        shapes = model_shapes("bert_large_ffn")
        assert shapes.signed_input
        assert all(layer.signed_input for layer in shapes.layers)
        assert shapes.total_macs > 50e9

    def test_compact_models_flagged(self):
        assert model_shapes("mobilenetv2").compact
        assert model_shapes("shufflenetv2").compact
        assert not model_shapes("resnet50").compact

    def test_layer_names_unique(self):
        for name in MODEL_NAMES:
            layers = model_shapes(name).layers
            assert len({l.name for l in layers}) == len(layers)

    def test_cnn_model_names_excludes_bert(self):
        assert "bert_large_ffn" not in CNN_MODEL_NAMES
        assert len(CNN_MODEL_NAMES) == 6


class TestRunnableModels:
    @pytest.mark.parametrize("name", MODEL_NAMES)
    def test_runnable_models_build_and_run(self, name):
        model = build_runnable(name, seed=0)
        assert model.is_calibrated
        rng = np.random.default_rng(0)
        if len(model.input_shape) == 3:
            x = np.abs(rng.normal(0, 1, size=(1, *model.input_shape)))
        else:
            x = rng.normal(0, 1, size=(2, *model.input_shape))
        out = model.forward_quantized(x)
        assert np.all(np.isfinite(out))

    def test_unknown_runnable_raises(self):
        with pytest.raises(KeyError):
            build_runnable("alexnet")

    def test_bert_like_model_has_signed_input(self):
        model = build_runnable("bert_large_ffn")
        assert model.signed_input

    def test_runnable_models_are_reproducible(self):
        a = build_runnable("resnet18", seed=3)
        b = build_runnable("resnet18", seed=3)
        assert np.array_equal(
            a.matmul_layers()[0].weight_codes, b.matmul_layers()[0].weight_codes
        )

    def test_mobilenet_like_uses_small_filters(self):
        model = build_runnable("mobilenetv2", seed=0)
        reductions = [l.reduction_dim for l in model.matmul_layers()]
        resnet = build_runnable("resnet18", seed=0)
        resnet_reductions = [l.reduction_dim for l in resnet.matmul_layers()]
        assert np.mean(reductions) < np.mean(resnet_reductions)
