"""The documentation must run: execute every Python snippet in README/docs.

Each ``python``-fenced code block in ``README.md`` and ``docs/*.md`` is
extracted and executed.  Blocks within one document share a namespace, in
order, so later snippets may build on earlier ones (the README's serving
snippet reuses the quickstart's model).  Non-Python fences (``bash``,
``text``) are ignored.
"""

from __future__ import annotations

import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOCUMENTS = sorted(
    [REPO_ROOT / "README.md", *(REPO_ROOT / "docs").glob("*.md")],
    key=lambda path: path.name,
)

_FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def python_blocks(path: Path) -> list[str]:
    """The document's ``python``-fenced code blocks, in order."""
    return _FENCE.findall(path.read_text(encoding="utf-8"))


def test_documents_exist_and_have_snippets():
    assert (REPO_ROOT / "README.md").is_file()
    assert (REPO_ROOT / "docs" / "architecture.md").is_file()
    assert (REPO_ROOT / "docs" / "experiments.md").is_file()
    assert python_blocks(REPO_ROOT / "README.md"), "README lost its snippets"


@pytest.mark.parametrize("document", DOCUMENTS, ids=[path.name for path in DOCUMENTS])
def test_snippets_execute(document):
    blocks = python_blocks(document)
    if not blocks:
        pytest.skip(f"{document.name} has no python snippets")
    namespace: dict = {"__name__": f"docs_snippet_{document.stem}"}
    for index, block in enumerate(blocks):
        try:
            exec(compile(block, f"{document.name}[snippet {index}]", "exec"), namespace)
        except Exception as error:  # pragma: no cover - failure reporting
            pytest.fail(f"{document.name} snippet {index} failed: {error!r}\n{block}")


def test_readme_links_resolve():
    """Relative markdown links in the README point at real files."""
    text = (REPO_ROOT / "README.md").read_text(encoding="utf-8")
    for target in re.findall(r"\]\((?!https?://)([^)#]+)\)", text):
        assert (REPO_ROOT / target).exists(), f"broken README link: {target}"
