"""Tests for 8-bit quantization and psum requantization."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arithmetic.quantize import (
    QuantizationParams,
    dequantize,
    integer_dot_product_terms,
    quantize_per_channel,
    quantize_tensor,
    requantize_psums,
)


class TestQuantizationParams:
    def test_unsigned_code_range(self):
        params = QuantizationParams(scale=0.1, zero_point=10)
        assert params.code_range == (0, 255)

    def test_signed_code_range(self):
        params = QuantizationParams(scale=0.1, zero_point=0, signed=True)
        assert params.code_range == (-128, 127)

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            QuantizationParams(scale=0.0, zero_point=0)

    def test_rejects_zero_point_out_of_range(self):
        with pytest.raises(ValueError):
            QuantizationParams(scale=1.0, zero_point=300)

    def test_rejects_mismatched_shapes(self):
        with pytest.raises(ValueError):
            QuantizationParams(scale=np.ones(3), zero_point=np.zeros(2, dtype=int))

    def test_per_channel_flag(self):
        assert QuantizationParams(
            scale=np.ones(4), zero_point=np.zeros(4, int)
        ).per_channel
        assert not QuantizationParams(scale=1.0, zero_point=0).per_channel


class TestQuantizeTensor:
    def test_roundtrip_error_bounded_by_half_step(self):
        params = QuantizationParams(scale=0.05, zero_point=0)
        values = np.linspace(0, 10, 100)
        codes = quantize_tensor(values, params)
        recovered = dequantize(codes, params)
        assert np.max(np.abs(values - recovered)) <= 0.5 * 0.05 + 1e-12

    def test_clipping_at_code_range(self):
        params = QuantizationParams(scale=0.1, zero_point=0)
        assert quantize_tensor(np.array([1e6]), params)[0] == 255
        assert quantize_tensor(np.array([-1e6]), params)[0] == 0

    def test_zero_maps_to_zero_point(self):
        params = QuantizationParams(scale=0.1, zero_point=37)
        assert quantize_tensor(np.array([0.0]), params)[0] == 37

    def test_per_channel_broadcasting(self):
        params = QuantizationParams(
            scale=np.array([0.1, 1.0]), zero_point=np.array([0, 0])
        )
        values = np.array([[1.0, 1.0], [2.0, 2.0]])
        codes = quantize_tensor(values, params, channel_axis=1)
        assert codes[0, 0] == 10 and codes[0, 1] == 1

    def test_channel_count_mismatch_raises(self):
        params = QuantizationParams(scale=np.ones(3), zero_point=np.zeros(3, int))
        with pytest.raises(ValueError):
            quantize_tensor(np.zeros((2, 2)), params, channel_axis=1)


class TestQuantizePerChannel:
    def test_codes_are_unsigned_8bit(self):
        rng = np.random.default_rng(0)
        weights = rng.normal(0, 0.1, size=(8, 32))
        codes, params = quantize_per_channel(weights)
        assert codes.min() >= 0 and codes.max() <= 255
        assert params.scale.shape == (8,)

    def test_reconstruction_error_small(self):
        rng = np.random.default_rng(1)
        weights = rng.normal(0, 0.1, size=(4, 64))
        codes, params = quantize_per_channel(weights)
        recovered = dequantize(codes, params, channel_axis=0)
        # Error is bounded by half a quantization step per channel.
        step = params.scale[:, np.newaxis]
        assert np.all(np.abs(weights - recovered) <= 0.5 * step + 1e-9)

    def test_zero_weight_maps_to_zero_point(self):
        weights = np.array([[-1.0, 0.0, 1.0]])
        codes, params = quantize_per_channel(weights)
        zero_code = quantize_tensor(np.zeros((1, 1)), params, channel_axis=0)
        assert zero_code[0, 0] == params.zero_point[0]

    def test_constant_channel_does_not_crash(self):
        codes, params = quantize_per_channel(np.zeros((2, 5)))
        assert codes.shape == (2, 5)

    def test_skewed_channel_uses_full_range(self):
        weights = np.array([np.linspace(-0.3, 0.1, 100)])
        codes, _ = quantize_per_channel(weights)
        assert codes.min() == 0
        assert codes.max() == 255


class TestIntegerDotProductTerms:
    def test_terms_recombine_to_affine_product(self):
        rng = np.random.default_rng(2)
        x = rng.integers(0, 256, size=(5, 16))
        w = rng.integers(0, 256, size=(16, 3))
        zx, zw = 7, rng.integers(0, 256, size=3)
        terms = integer_dot_product_terms(x, w, zx, zw)
        expected = (x - zx) @ (w - zw[np.newaxis, :])
        combined = (
            terms["raw"]
            - terms["input_sum_term"]
            - terms["weight_sum_term"]
            + terms["constant_term"]
        )
        assert np.array_equal(combined, expected)


class TestRequantizePsums:
    def test_relu_fusion_zeroes_negatives(self):
        out = requantize_psums(np.array([[-100.0, 100.0]]), output_scale=0.1)
        assert out[0, 0] == 0 and out[0, 1] == 10

    def test_without_relu_clips_at_zero_for_unsigned(self):
        out = requantize_psums(np.array([[-100.0]]), output_scale=0.1, fuse_relu=False)
        assert out[0, 0] == 0

    def test_signed_output_range(self):
        out = requantize_psums(
            np.array([[-10000.0, 10000.0]]),
            output_scale=0.1,
            fuse_relu=False,
            signed_output=True,
        )
        assert out[0, 0] == -128 and out[0, 1] == 127

    def test_bias_applied(self):
        out = requantize_psums(
            np.array([[0.0]]), output_scale=1.0, output_bias=np.array([5.0])
        )
        assert out[0, 0] == 5

    def test_per_channel_scale(self):
        out = requantize_psums(
            np.array([[10.0, 10.0]]), output_scale=np.array([1.0, 2.0])
        )
        assert out[0, 0] == 10 and out[0, 1] == 20

    def test_rejects_non_positive_scale(self):
        with pytest.raises(ValueError):
            requantize_psums(np.zeros((1, 1)), output_scale=0.0)

    def test_rejects_mismatched_channels(self):
        with pytest.raises(ValueError):
            requantize_psums(np.zeros((1, 4)), output_scale=np.ones(3))


class TestQuantizationProperties:
    @given(
        st.floats(min_value=0.01, max_value=10.0),
        st.integers(min_value=0, max_value=255),
    )
    @settings(max_examples=50, deadline=None)
    def test_dequantize_quantize_identity_on_codes(self, scale, zero_point):
        params = QuantizationParams(scale=scale, zero_point=zero_point)
        codes = np.arange(0, 256, 17)
        roundtrip = quantize_tensor(dequantize(codes, params), params)
        assert np.array_equal(roundtrip, codes)
