"""Tests for the Slicing value type and slicing enumeration."""

import numpy as np
import pytest

from repro.arithmetic.slicing import (
    ISAAC_INPUT_SLICING,
    ISAAC_WEIGHT_SLICING,
    RAELLA_DEFAULT_WEIGHT_SLICING,
    RAELLA_RECOVERY_INPUT_SLICING,
    RAELLA_SPECULATIVE_INPUT_SLICING,
    Slicing,
    enumerate_slicings,
)


class TestSlicing:
    def test_basic_properties(self):
        s = Slicing((4, 2, 2))
        assert s.n_slices == 3
        assert s.total_bits == 8
        assert s.shifts == (4, 2, 0)
        assert s.max_slice_bits == 4

    def test_str_representation(self):
        assert str(Slicing((4, 2, 2))) == "4b-2b-2b"

    def test_len_and_iter(self):
        s = Slicing((2, 3, 3))
        assert len(s) == 3
        assert list(s) == [2, 3, 3]

    def test_equality_and_hash(self):
        assert Slicing((4, 4)) == Slicing((4, 4))
        assert hash(Slicing((4, 4))) == hash(Slicing((4, 4)))
        assert Slicing((4, 4)) != Slicing((2, 2, 2, 2))

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            Slicing(())

    def test_rejects_non_positive_width(self):
        with pytest.raises(ValueError):
            Slicing((4, 0))

    def test_slice_and_reassemble_unsigned(self):
        s = Slicing((4, 2, 2))
        values = np.arange(256)
        assert np.array_equal(s.reassemble(s.slice_unsigned(values)), values)

    def test_slice_and_reassemble_signed(self):
        s = Slicing((4, 4))
        values = np.arange(-255, 256, 7)
        assert np.array_equal(s.reassemble(s.slice_signed(values)), values)

    def test_refine_to_bit_serial(self):
        assert Slicing((4, 2, 2)).refine_to_bit_serial() == Slicing((1,) * 8)

    def test_split_slice_to_bits(self):
        refined = Slicing((4, 2, 2)).split_slice_to_bits(0)
        assert refined.widths == (1, 1, 1, 1, 2, 2)
        assert refined.total_bits == 8

    def test_split_slice_out_of_range(self):
        with pytest.raises(IndexError):
            Slicing((4, 4)).split_slice_to_bits(2)


class TestEnumerateSlicings:
    def test_paper_count_of_108(self):
        assert len(enumerate_slicings(8, 4)) == 108

    def test_all_cover_total_bits(self):
        assert all(s.total_bits == 8 for s in enumerate_slicings(8, 4))

    def test_all_respect_device_limit(self):
        assert all(s.max_slice_bits <= 4 for s in enumerate_slicings(8, 4))

    def test_sorted_by_slice_count(self):
        counts = [s.n_slices for s in enumerate_slicings(8, 4)]
        assert counts == sorted(counts)

    def test_densest_first_is_4_4(self):
        assert enumerate_slicings(8, 4)[0] == Slicing((4, 4))

    def test_most_conservative_last_is_bit_serial(self):
        assert enumerate_slicings(8, 4)[-1] == Slicing((1,) * 8)

    def test_no_duplicates(self):
        slicings = enumerate_slicings(8, 4)
        assert len(set(slicings)) == len(slicings)

    def test_small_case_exhaustive(self):
        # Compositions of 3 with parts <= 2: (1,1,1), (1,2), (2,1) -> 3.
        assert len(enumerate_slicings(3, 2)) == 3

    def test_single_bit_case(self):
        assert enumerate_slicings(1, 4) == (Slicing((1,)),)

    def test_rejects_invalid_arguments(self):
        with pytest.raises(ValueError):
            enumerate_slicings(0, 4)
        with pytest.raises(ValueError):
            enumerate_slicings(8, 0)


class TestNamedSlicings:
    def test_isaac_weight_slicing(self):
        assert ISAAC_WEIGHT_SLICING.widths == (2, 2, 2, 2)

    def test_isaac_input_slicing_is_bit_serial(self):
        assert ISAAC_INPUT_SLICING.widths == (1,) * 8

    def test_raella_default_weight_slicing(self):
        assert RAELLA_DEFAULT_WEIGHT_SLICING.widths == (4, 2, 2)

    def test_raella_speculative_slicing_has_three_slices(self):
        assert RAELLA_SPECULATIVE_INPUT_SLICING.n_slices == 3
        assert RAELLA_SPECULATIVE_INPUT_SLICING.total_bits == 8

    def test_raella_recovery_slicing_is_bit_serial(self):
        assert RAELLA_RECOVERY_INPUT_SLICING.widths == (1,) * 8
