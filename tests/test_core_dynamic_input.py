"""Tests for Dynamic Input Slicing phase planning."""

import numpy as np
import pytest

from repro.arithmetic.slicing import Slicing
from repro.core.dynamic_input import (
    InputPhase,
    InputSlicePlan,
    SpeculationMode,
    extract_input_slice,
)


class TestInputPhase:
    def test_valid_phase(self):
        phase = InputPhase(kind="speculative", width=4, shift=4)
        assert phase.magnitude_shift == 4

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            InputPhase(kind="bogus", width=1, shift=0)

    def test_rejects_bad_geometry(self):
        with pytest.raises(ValueError):
            InputPhase(kind="serial", width=0, shift=0)
        with pytest.raises(ValueError):
            InputPhase(kind="serial", width=1, shift=-1)


class TestSpeculativePlan:
    def test_default_plan_has_eleven_cycles(self):
        plan = InputSlicePlan.build()
        assert plan.n_cycles == 11
        assert plan.n_speculative == 3
        assert plan.n_recovery == 8

    def test_recovery_follows_each_speculative_slice(self):
        plan = InputSlicePlan.build()
        kinds = [p.kind for p in plan.phases]
        assert kinds == (
            ["speculative"] + ["recovery"] * 4
            + ["speculative"] + ["recovery"] * 2
            + ["speculative"] + ["recovery"] * 2
        )

    def test_recovery_bits_cover_parent_slice(self):
        plan = InputSlicePlan.build()
        first_spec = plan.phases[0]
        recovery_shifts = [p.shift for p in plan.phases[1:5]]
        assert recovery_shifts == [7, 6, 5, 4]
        assert first_spec.shift == 4

    def test_parent_indices(self):
        plan = InputSlicePlan.build()
        for phase in plan.phases:
            assert phase.parent is not None
            assert 0 <= phase.parent < 3

    def test_adc_converting_phases_exclude_recovery(self):
        plan = InputSlicePlan.build()
        assert len(plan.adc_converting_phases) == 3

    def test_mismatched_bit_width_raises(self):
        with pytest.raises(ValueError):
            InputSlicePlan.build(speculative_slicing=Slicing((4, 2)), input_bits=8)

    def test_custom_speculative_slicing(self):
        plan = InputSlicePlan.build(speculative_slicing=Slicing((2, 2, 2, 2)))
        assert plan.n_speculative == 4
        assert plan.n_cycles == 12


class TestBitSerialPlan:
    def test_eight_serial_cycles(self):
        plan = InputSlicePlan.build(mode=SpeculationMode.BIT_SERIAL)
        assert plan.n_cycles == 8
        assert plan.n_speculative == 0
        assert all(p.kind == "serial" for p in plan.phases)

    def test_custom_serial_slicing(self):
        plan = InputSlicePlan.build(
            mode=SpeculationMode.BIT_SERIAL, serial_slicing=Slicing((4, 4))
        )
        assert plan.n_cycles == 2
        assert [p.width for p in plan.phases] == [4, 4]

    def test_all_columns_convert_in_serial_mode(self):
        plan = InputSlicePlan.build(mode=SpeculationMode.BIT_SERIAL)
        assert len(plan.adc_converting_phases) == 8

    def test_incomplete_serial_slicing_raises(self):
        # Directly-built plans must fail loudly, not only via PimLayerConfig.
        with pytest.raises(ValueError):
            InputSlicePlan.build(
                mode=SpeculationMode.BIT_SERIAL,
                serial_slicing=Slicing((4, 2)),
                input_bits=8,
            )


class TestExtractInputSlice:
    def test_extracts_high_nibble(self):
        phase = InputPhase(kind="speculative", width=4, shift=4)
        values = extract_input_slice(np.array([0xAB]), phase)
        assert values[0] == 0xA

    def test_extracts_single_bits(self):
        phase = InputPhase(kind="recovery", width=1, shift=0)
        assert extract_input_slice(np.array([3]), phase)[0] == 1
        phase = InputPhase(kind="recovery", width=1, shift=2)
        assert extract_input_slice(np.array([3]), phase)[0] == 0

    def test_rejects_negative_inputs(self):
        phase = InputPhase(kind="serial", width=1, shift=0)
        with pytest.raises(ValueError):
            extract_input_slice(np.array([-1]), phase)

    def test_slices_recombine_to_value(self):
        plan = InputSlicePlan.build(mode=SpeculationMode.BIT_SERIAL)
        values = np.arange(256)
        total = sum(extract_input_slice(values, p) << p.shift for p in plan.phases)
        assert np.array_equal(total, values)

    def test_speculative_slices_recombine_to_value(self):
        plan = InputSlicePlan.build()
        values = np.arange(256)
        total = sum(
            extract_input_slice(values, p) << p.shift
            for p in plan.phases
            if p.kind == "speculative"
        )
        assert np.array_equal(total, values)
